"""Discrete-event simulation kernel.

This module implements a small, self-contained discrete-event simulation
(DES) engine in the style popularised by SimPy: simulation logic is written
as plain Python generator functions ("processes") that ``yield`` events; the
:class:`Environment` advances a virtual clock and resumes each process when
the event it waits on is triggered.

The engine is deliberately minimal but complete enough to model operating
system schedulers, TCP connections and multi-tier server systems:

* :class:`Environment` — the event queue and virtual clock.
* :class:`Event` — one-shot signal carrying a value or an exception.
* :class:`Timeout` — an event that triggers after a fixed virtual delay.
* :class:`Process` — a running generator; itself an event that triggers when
  the generator returns (its value) or raises (its exception).
* :class:`Condition` / :func:`Environment.all_of` / :func:`Environment.any_of`
  — composite events.

Determinism
-----------
Events scheduled for the same virtual time are processed in a stable order:
first by ``priority`` (lower runs first), then by insertion sequence. Given
the same seed streams (see :mod:`repro.sim.rng`) a simulation is perfectly
reproducible, which the test suite relies on heavily.

Fast path
---------
Simulator events/sec is the hard ceiling on every experiment in this repo,
so the kernel trades a little generality for speed — without moving a
single result (the golden-digest tests pin bit-identical behaviour):

* every kernel class declares ``__slots__`` and the hot paths read
  ``_value``/``_ok``/``callbacks`` directly instead of going through
  properties;
* :class:`Timeout` objects (and their callback lists) are recycled through
  a per-environment free list — see :meth:`Environment.pooled_timeout` for
  the safety contract;
* abandoned timeouts are cancelled *lazily*: cancellation marks the event
  and the scheduler drops it when it pops (or in a periodic heap
  compaction), so cancelling is O(1) instead of O(n) — see
  :meth:`Environment._cancel`;
* ``any_of``/``all_of`` prune their losing :class:`Timeout` children once
  the condition triggers, which keeps far-future retry deadlines from
  piling up in the heap (the client retry pattern).

The insertion-sequence counter is consumed at exactly the same points as
before any of this machinery existed, which is what makes the fast path
observationally equivalent.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from itertools import count
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import (
    EventLifecycleError,
    InterruptError,
    ProcessError,
    SimulationError,
    StopSimulation,
)

__all__ = [
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "Environment",
    "Event",
    "ReusableEvent",
    "Timeout",
    "Process",
    "Condition",
]

#: Scheduling priority for events that must pre-empt same-time events
#: (used internally by interrupts).
PRIORITY_URGENT = 0

#: Default scheduling priority.
PRIORITY_NORMAL = 1

# Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()

#: Upper bound on the per-environment Timeout free list.  Big enough to
#: absorb the steady-state churn of a large simulation (the pool only grows
#: to the peak number of *simultaneously pending* pooled timeouts), small
#: enough that a pathological burst cannot pin memory forever.
_POOL_MAX = 1024

#: Lazy cancellation compacts the heap once at least this many cancelled
#: entries have accumulated *and* they outnumber the live ones, bounding
#: the queue to ~2x its live size at O(n) amortised cost.
_COMPACT_MIN = 64


class Event:
    """A one-shot occurrence inside a simulation.

    An event starts *untriggered*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* it: the event is placed on the environment's queue and, when
    the clock reaches it, every registered callback runs exactly once
    (the event is then *processed*).

    Processes wait for events by ``yield``-ing them.  Yielding an already
    processed event resumes the process immediately (at the current virtual
    time) with the event's value.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused", "_cancelled", "_fire_at")

    #: Class flag: instances are recycled through the environment's free
    #: list after processing (see :meth:`Environment.pooled_timeout`).
    _poolable = False

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        #: Set by Process when it fails-over an exception into a waiter, so
        #: unhandled event failures can be reported exactly once.
        self.defused: bool = False
        #: Lazily cancelled: the heap entry is dead and will be dropped at
        #: pop (or compaction) time instead of being searched for now.
        self._cancelled: bool = False

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed`/:meth:`fail` has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once all callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event succeeded with (or its exception)."""
        if self._value is _PENDING:
            raise EventLifecycleError(f"{self!r} has not been triggered yet")
        return self._value

    # ------------------------------------------------------------------
    # Triggering
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise EventLifecycleError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        heappush(env._queue, (env._now, priority, next(env._eid), self))
        return self

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event with an exception.

        Any process waiting on the event will have ``exception`` raised at
        its ``yield`` statement.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise EventLifecycleError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        env = self.env
        heappush(env._queue, (env._now, priority, next(env._eid), self))
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state (ok/value) of another event.

        Useful as a callback: ``other.callbacks.append(this.trigger)``.
        """
        if event._ok:
            self.succeed(event._value)
        else:
            event.defused = True
            self.fail(event._value)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class ReusableEvent(Event):
    """An event that a *single owner* re-arms instead of re-allocating.

    The blocked-writer path parks on buffer space once per drain round; a
    blocking 1 MB write through a 16 KB buffer used to allocate ~64 events
    plus as many wake-up closures.  A ``ReusableEvent`` lets the writer
    re-arm one object for the whole write (see
    :meth:`repro.net.tcp.Connection.blocking_write`).

    Contract: only the owner may hold a reference across :meth:`rearm`;
    anyone else must treat it as an ordinary one-shot event.
    """

    __slots__ = ()

    def rearm(self) -> "ReusableEvent":
        """Reset to the untriggered state; returns ``self``.

        A no-op while the event is still armed and unfired.  Raises
        :class:`EventLifecycleError` if called between trigger and
        processing — the scheduler still holds the old incarnation.
        """
        if self._value is _PENDING:
            return self
        if self.callbacks is not None:
            raise EventLifecycleError(f"{self!r} is scheduled; cannot rearm")
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self.defused = False
        return self


class Timeout(Event):
    """An event that triggers automatically ``delay`` time units from now."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        # Inlined Event.__init__ + Environment._schedule: timeouts are the
        # single most-allocated object in a simulation (~70% of all events).
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self.defused = False
        self._cancelled = False
        self._delay = delay
        fire_at = env._now + delay
        self._fire_at = fire_at
        heappush(env._queue, (fire_at, PRIORITY_NORMAL, next(env._eid), self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay!r}>"


class _PooledTimeout(Timeout):
    """A :class:`Timeout` that returns to the environment's free list.

    Never instantiate directly — use :meth:`Environment.pooled_timeout`,
    and read its safety contract first.
    """

    __slots__ = ()

    _poolable = True


class Initialize(Event):
    """Internal event that kicks off a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._resume_cb]
        self._value = None
        self._ok = True
        self.defused = False
        self._cancelled = False
        heappush(env._queue, (env._now, PRIORITY_URGENT, next(env._eid), self))


class Interruption(Event):
    """Internal urgent event that delivers an interrupt to a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any):
        super().__init__(process.env)
        if process._value is not _PENDING:
            raise SimulationError("cannot interrupt a terminated process")
        if process is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        self.process = process
        self._ok = False
        self._value = InterruptError(cause)
        self.defused = True
        self.callbacks.append(self._interrupt)
        self.env._schedule(self, priority=PRIORITY_URGENT)

    def _interrupt(self, event: Event) -> None:
        process = self.process
        if process._value is not _PENDING:
            return  # Terminated between scheduling and delivery.
        # Detach the process from whatever event it currently waits on.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume_cb)
            except ValueError:
                pass
            if not target.callbacks and isinstance(target, Timeout):
                # Nobody is left waiting on the timer: let it die in place
                # instead of popping as a no-op at its far-future deadline.
                # (A re-yield revives it — see Process._resume.)
                process.env._cancel(target)
        process._resume(self)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an :class:`Event`: it triggers with the
    generator's return value when the generator finishes, or fails with the
    exception if one escapes.
    """

    __slots__ = ("_generator", "_target", "name", "_resume_cb")

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any], name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # `self._resume` builds a fresh bound-method object on every read;
        # the kernel registers it once per suspension, so cache one copy.
        # (Bound methods compare by (func, instance), so detach-by-remove
        # works on either copy — the cache is purely an allocation saving.)
        self._resume_cb = self._resume
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`InterruptError` inside the process.

        The interrupted process may catch the error and continue; the event
        it was waiting on remains valid and may be re-yielded.
        """
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        generator = self._generator
        env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    event.defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as exc:
                self._target = None
                env._active_process = None
                self.succeed(getattr(exc, "value", None))
                return
            except BaseException as exc:
                self._target = None
                env._active_process = None
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                self.fail(exc)
                return

            if not isinstance(next_event, Event):
                self._target = None
                env._active_process = None
                self.fail(
                    ProcessError(f"process {self.name!r} yielded a non-event: {next_event!r}")
                )
                return

            if next_event.callbacks is not None:
                # Event not yet processed: register and suspend.
                next_event.callbacks.append(self._resume_cb)
                if next_event._cancelled:
                    # Re-yielded after an interrupt detached us: the heap
                    # entry is still live, so reviving is just unmarking.
                    next_event._cancelled = False
                    env._cancelled_entries -= 1
                self._target = next_event
                break
            if next_event._cancelled:
                # Re-yielded after compaction dropped the heap entry:
                # reschedule at the original fire time (Timeouts record it).
                next_event._cancelled = False
                next_event.callbacks = [self._resume_cb]
                heappush(
                    env._queue,
                    (next_event._fire_at, PRIORITY_NORMAL, next(env._eid), next_event),
                )
                self._target = next_event
                break
            # Event already processed: continue immediately with its value.
            event = next_event
        env._active_process = None

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class Condition(Event):
    """Composite event that triggers when ``evaluate`` says enough children
    have triggered.

    Succeeds with a dict mapping each *triggered* child event to its value
    (insertion-ordered).  Fails as soon as any child fails.
    """

    __slots__ = ("_events", "_evaluate", "_done")

    def __init__(
        self,
        env: "Environment",
        events: Iterable[Event],
        evaluate: Callable[[int, int], bool],
    ):
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._done = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        if not self._events:
            self.succeed({})
            return
        check = self._check  # one bound method for all children
        for event in self._events:
            if event.callbacks is None:
                check(event)
            else:
                if event._cancelled:
                    # A cancelled-but-queued timer gains a waiter again.
                    event._cancelled = False
                    env._cancelled_entries -= 1
                event.callbacks.append(check)

    def _collect(self) -> dict:
        # Only *processed* children count: a Timeout carries its value from
        # construction, so `triggered` alone would leak future events in.
        return {ev: ev._value for ev in self._events if ev.callbacks is None and ev._ok}

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            if not event._ok:
                event.defused = True
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            self._prune_pending_timeouts()
            return
        self._done += 1
        if self._evaluate(len(self._events), self._done):
            self.succeed(self._collect())
            self._prune_pending_timeouts()

    def _prune_pending_timeouts(self) -> None:
        """Lazily cancel losing :class:`Timeout` children.

        Once the condition has triggered, our ``_check`` on a still-pending
        child only defuses failures — and a pending ``Timeout`` can never
        fail (its outcome is fixed at construction).  Dropping the callback
        is therefore unobservable, and when it leaves the timer with no
        waiters at all the timer is cancelled so abandoned retry deadlines
        stop accumulating in the heap until their far-future pop.

        Non-Timeout children keep their ``_check`` registration: they may
        still fail later and rely on it for defusing.
        """
        cancel = self.env._cancel
        check = self._check
        for ev in self._events:
            callbacks = ev.callbacks
            if callbacks is not None and isinstance(ev, Timeout):
                try:
                    callbacks.remove(check)
                except ValueError:
                    pass
                if not callbacks:
                    cancel(ev)

    @staticmethod
    def all_events(total: int, done: int) -> bool:
        """Evaluate function for "wait for every child"."""
        return total == done

    @staticmethod
    def any_event(total: int, done: int) -> bool:
        """Evaluate function for "wait for the first child"."""
        return done > 0 or total == 0


class Environment:
    """The simulation environment: virtual clock plus event queue.

    Typical usage::

        env = Environment()

        def worker(env):
            yield env.timeout(1.0)
            return "done"

        proc = env.process(worker(env))
        env.run()
        assert env.now == 1.0 and proc.value == "done"
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[tuple] = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        #: Events popped and processed so far (perf-suite instrumentation;
        #: lazily-cancelled entries that are skipped do not count).
        self.events_processed = 0
        #: Free list of recycled :class:`_PooledTimeout` objects.
        self._timeout_pool: List[_PooledTimeout] = []
        #: Number of heap entries whose event is lazily cancelled.
        self._cancelled_entries = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (``None`` between events)."""
        return self._active_process

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        # Body of Timeout.__init__, inlined to skip one Python call on the
        # most-allocated object of every simulation — keep them in sync.
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        t = Timeout.__new__(Timeout)
        t.env = self
        t.callbacks = []
        t._value = value
        t._ok = True
        t.defused = False
        t._cancelled = False
        t._delay = delay
        fire_at = self._now + delay
        t._fire_at = fire_at
        heappush(self._queue, (fire_at, PRIORITY_NORMAL, next(self._eid), t))
        return t

    def pooled_timeout(self, delay: float, value: Any = None) -> Timeout:
        """A :class:`Timeout` recycled through a free list after it fires.

        Observationally identical to :meth:`timeout` (same scheduling, same
        insertion-sequence draw) but the object and its callback list are
        reused, which eliminates the dominant allocation of a simulation.

        Safety contract — callers must guarantee both:

        1. **no reference outlives processing**: once the timeout fires the
           object may be handed to someone else, so never store it, never
           put it in a :class:`Condition`, and never inspect it after a
           ``yield`` on it returns;
        2. **the waiting process is never interrupted** while suspended on
           it (an interrupt may legitimately re-yield, which for a pooled
           object would observe a recycled incarnation).

        Internal machinery with fire-and-forget timers (the CPU scheduler's
        quantum sleeps, the TCP delivery/ACK timers) satisfies this; user
        code should keep calling :meth:`timeout`.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        pool = self._timeout_pool
        if not pool:
            t = _PooledTimeout.__new__(_PooledTimeout)
            t.env = self
            t.callbacks = []
            t._value = value
            t._ok = True
            t.defused = False
            t._cancelled = False
            t._delay = delay
            fire_at = self._now + delay
            t._fire_at = fire_at
            heappush(self._queue, (fire_at, PRIORITY_NORMAL, next(self._eid), t))
            return t
        t = pool.pop()
        t._value = value
        t._ok = True
        t.defused = False
        t._delay = delay
        if t.callbacks is None:
            t.callbacks = []
        fire_at = self._now + delay
        t._fire_at = fire_at
        heappush(self._queue, (fire_at, PRIORITY_NORMAL, next(self._eid), t))
        return t

    # ------------------------------------------------------------------
    # Batch scheduling of pre-computed event trains
    # ------------------------------------------------------------------
    # The flow-level TCP fast path computes a whole ACK-clocked drain in
    # closed form and then needs to schedule its boundary events at the
    # *exact* timestamps the per-segment path would have produced.  A
    # relative ``timeout(fire_at - now)`` cannot do that: float addition is
    # not associative, so ``now + (fire_at - now)`` generally differs from
    # ``fire_at`` in the last ulp — enough to reorder same-time events and
    # break the golden digests.  These helpers take the absolute fire time.

    def schedule_at(self, fire_at: float, value: Any = None) -> Timeout:
        """A :class:`Timeout` that fires at the absolute time ``fire_at``.

        Bit-exact counterpart of :meth:`timeout` for pre-computed event
        trains: the heap key is ``fire_at`` itself, not ``now + delay``.
        """
        if fire_at < self._now:
            raise ValueError(f"fire_at={fire_at!r} is in the past (now={self._now!r})")
        t = Timeout.__new__(Timeout)
        t.env = self
        t.callbacks = []
        t._value = value
        t._ok = True
        t.defused = False
        t._cancelled = False
        t._delay = fire_at - self._now
        t._fire_at = fire_at
        heappush(self._queue, (fire_at, PRIORITY_NORMAL, next(self._eid), t))
        return t

    def pooled_schedule_at(
        self, fire_at: float, value: Any = None, priority: int = PRIORITY_NORMAL
    ) -> Timeout:
        """Pooled variant of :meth:`schedule_at`.

        Same free-list recycling — and therefore the same safety contract —
        as :meth:`pooled_timeout`.
        """
        if fire_at < self._now:
            raise ValueError(f"fire_at={fire_at!r} is in the past (now={self._now!r})")
        pool = self._timeout_pool
        if pool:
            t = pool.pop()
            t._value = value
            t._ok = True
            t.defused = False
            if t.callbacks is None:
                t.callbacks = []
        else:
            t = _PooledTimeout.__new__(_PooledTimeout)
            t.env = self
            t.callbacks = []
            t._value = value
            t._ok = True
            t.defused = False
            t._cancelled = False
        t._delay = fire_at - self._now
        t._fire_at = fire_at
        heappush(self._queue, (fire_at, priority, next(self._eid), t))
        return t

    def schedule_keyed(
        self,
        event: Event,
        fire_at: float,
        key: int,
        value: Any = None,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Pre-trigger ``event`` like :meth:`schedule_event_at`, but with a
        caller-chosen tie-break ``key`` instead of the next insertion id.

        The sharded kernel (:mod:`repro.shard`) applies cross-shard message
        batches on a receiving island whose local insertion counter has
        diverged from the serial run's.  A partition-stable key — derived
        from the message's (channel, sequence) identity, offset far above
        any realistic local eid — keeps same-time ordering independent of
        how many local events each island happened to process, which is
        what makes the merged run digest-identical to the serial one.

        The local eid counter is deliberately *not* consumed.
        """
        if fire_at < self._now:
            raise ValueError(f"fire_at={fire_at!r} is in the past (now={self._now!r})")
        if event._value is not _PENDING:
            raise EventLifecycleError(f"{event!r} has already been triggered")
        event._ok = True
        event._value = value
        event._fire_at = fire_at
        heappush(self._queue, (fire_at, priority, key, event))
        return event

    def schedule_event_at(
        self,
        event: Event,
        fire_at: float,
        value: Any = None,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Pre-trigger ``event`` with ``value`` but deliver it at ``fire_at``.

        The *armed wake-up* primitive: instead of a timer that fires and
        then succeeds a waiter (two heap entries), the waiter itself is
        pushed at its known future wake time.  The event reports
        ``triggered`` immediately — callers that arm events this way own
        them and must not inspect the trigger state in between.

        ``event._fire_at`` is recorded so the tombstone-revival path in
        :meth:`Process._resume` can reschedule an armed event exactly like
        a compacted :class:`Timeout`.
        """
        if fire_at < self._now:
            raise ValueError(f"fire_at={fire_at!r} is in the past (now={self._now!r})")
        if event._value is not _PENDING:
            raise EventLifecycleError(f"{event!r} has already been triggered")
        event._ok = True
        event._value = value
        event._fire_at = fire_at
        heappush(self._queue, (fire_at, priority, next(self._eid), event))
        return event

    def process(self, generator: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start a new process from ``generator`` and return it."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> Condition:
        """Event that triggers when *all* of ``events`` have succeeded."""
        return Condition(self, events, Condition.all_events)

    def any_of(self, events: Iterable[Event]) -> Condition:
        """Event that triggers when *any* of ``events`` has succeeded."""
        return Condition(self, events, Condition.any_event)

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL) -> None:
        heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def _cancel(self, event: Event) -> None:
        """Lazily cancel a queued event nobody waits on (Timeouts only).

        O(1): the event is only marked; its heap entry dies when it pops or
        when enough dead entries accumulate to warrant a compaction.  A
        skipped pop is observationally identical to processing a timeout
        with no callbacks — the clock still advances to its time unless
        compaction removed it first, which no one can observe because, by
        definition, nothing was scheduled to happen *at* that time.
        """
        if event._cancelled or event.callbacks is None:
            return
        event._cancelled = True
        self._cancelled_entries += 1
        if self._cancelled_entries > _COMPACT_MIN and self._cancelled_entries * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled heap entries and re-heapify (in place).

        Cancelled non-poolable timeouts become *tombstones* — processed-
        looking (``callbacks is None``) but still ``_cancelled`` — so a
        later re-yield can detect the state and reschedule at ``_fire_at``
        (see :meth:`Process._resume`).  Pooled ones go back to the free
        list.  Mutates ``_queue`` in place because ``run`` holds a local
        reference to the list across steps.
        """
        queue = self._queue
        pool = self._timeout_pool
        keep = []
        for entry in queue:
            event = entry[3]
            if event._cancelled:
                event.callbacks = None
                if event._poolable:
                    event._cancelled = False
                    if len(pool) < _POOL_MAX:
                        pool.append(event)
            else:
                keep.append(entry)
        queue[:] = keep
        heapify(queue)
        self._cancelled_entries = 0

    def peek(self) -> float:
        """Virtual time of the next scheduled event (``inf`` if none)."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event.

        Raises :class:`SimulationError` if the queue is empty, and re-raises
        any *undefused* event failure (an exception nobody waited for).

        NOTE: :meth:`run` inlines this body for speed — keep them in sync.
        """
        queue = self._queue
        if not queue:
            raise SimulationError("no scheduled events")
        self._now, _, _, event = heappop(queue)
        if event._cancelled:
            # Lazily-cancelled entry: drop it, nobody is watching.
            event._cancelled = False
            event.callbacks = None
            self._cancelled_entries -= 1
            if event._poolable and len(self._timeout_pool) < _POOL_MAX:
                self._timeout_pool.append(event)
            return
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if event._poolable:
            # Pooled timeouts always succeed; recycle object + list.
            callbacks.clear()
            event.callbacks = callbacks
            if len(self._timeout_pool) < _POOL_MAX:
                self._timeout_pool.append(event)
        elif not event._ok and not event.defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise ProcessError(f"event failed with non-exception {exc!r}")

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue is exhausted;
        * a number — run until virtual time reaches it;
        * an :class:`Event` — run until that event is processed, returning
          its value (or raising its exception).
        """
        stop_value = _PENDING

        if until is None:
            stop_time = float("inf")
        elif isinstance(until, Event):
            if until.callbacks is None:
                return until.value if until._ok else self._raise(until._value)

            def _stop(event: Event) -> None:
                nonlocal stop_value
                stop_value = event
                raise StopSimulation()

            if until._cancelled:
                until._cancelled = False
                self._cancelled_entries -= 1
            until.callbacks.append(_stop)
            stop_time = float("inf")
        else:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(f"until={stop_time!r} is in the past (now={self._now!r})")

        # Inlined step() loop (see note there): the per-event overhead of a
        # method call plus attribute lookups is measurable at millions of
        # events per run.  `queue` stays valid because _compact mutates the
        # list in place.
        queue = self._queue
        pool = self._timeout_pool
        events_processed = 0
        try:
            while queue and queue[0][0] <= stop_time:
                self._now, _, _, event = heappop(queue)
                if event._cancelled:
                    event._cancelled = False
                    event.callbacks = None
                    self._cancelled_entries -= 1
                    if event._poolable and len(pool) < _POOL_MAX:
                        pool.append(event)
                    continue
                events_processed += 1
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if event._poolable:
                    callbacks.clear()
                    event.callbacks = callbacks
                    if len(pool) < _POOL_MAX:
                        pool.append(event)
                elif not event._ok and not event.defused:
                    exc = event._value
                    if isinstance(exc, BaseException):
                        raise exc
                    raise ProcessError(f"event failed with non-exception {exc!r}")
        except StopSimulation:
            pass
        finally:
            self.events_processed += events_processed

        if stop_value is not _PENDING:
            event = stop_value
            if event._ok:
                return event._value
            event.defused = True
            return self._raise(event._value)

        if until is not None and not isinstance(until, Event):
            # Advance the clock to the requested time even if the queue
            # drained early, so back-to-back run(until=...) calls compose.
            self._now = max(self._now, stop_time)
        return None

    def run_window(self, stop: float) -> None:
        """Run every event *strictly before* ``stop``; leave ``stop`` alone.

        The conservative-sync primitive for the sharded kernel: a shard may
        safely process local events up to (but not including) its barrier
        horizon, because peers can still inject cross-shard messages firing
        exactly *at* the horizon.  Unlike :meth:`run`, the clock is **not**
        advanced to ``stop`` when the queue drains early — the next window
        (or the epilogue ``run(until=duration)``) owns that advance, and an
        early jump would let a process scheduled by an incoming message
        observe a future ``now``.

        Same inlined pop loop as :meth:`run`; keep the bodies in sync.
        """
        queue = self._queue
        pool = self._timeout_pool
        events_processed = 0
        try:
            while queue and queue[0][0] < stop:
                self._now, _, _, event = heappop(queue)
                if event._cancelled:
                    event._cancelled = False
                    event.callbacks = None
                    self._cancelled_entries -= 1
                    if event._poolable and len(pool) < _POOL_MAX:
                        pool.append(event)
                    continue
                events_processed += 1
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if event._poolable:
                    callbacks.clear()
                    event.callbacks = callbacks
                    if len(pool) < _POOL_MAX:
                        pool.append(event)
                elif not event._ok and not event.defused:
                    exc = event._value
                    if isinstance(exc, BaseException):
                        raise exc
                    raise ProcessError(f"event failed with non-exception {exc!r}")
        finally:
            self.events_processed += events_processed

    @staticmethod
    def _raise(exc: Any) -> Any:
        raise exc

    def __repr__(self) -> str:
        return f"<Environment now={self._now!r} queued={len(self._queue)}>"
