"""Discrete-event simulation kernel used by every substrate in this repo.

Public surface:

* :class:`~repro.sim.core.Environment` and the event/process machinery,
* :class:`~repro.sim.resources.Resource` / ``Store`` / ``Container``,
* :class:`~repro.sim.rng.SeedStreams` deterministic RNG streams.
"""

from repro.sim.core import (
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    Condition,
    Environment,
    Event,
    Process,
    Timeout,
)
from repro.sim.resources import Container, PriorityResource, Request, Resource, Store
from repro.sim.rng import SeedStreams, derive_seed

__all__ = [
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
    "Condition",
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "Container",
    "PriorityResource",
    "Request",
    "Resource",
    "Store",
    "SeedStreams",
    "derive_seed",
]
