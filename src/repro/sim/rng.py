"""Deterministic random-number streams for simulations.

Every stochastic component of a simulation (each client, each workload mix,
each service-time sampler) draws from its own named stream so that adding a
new component never perturbs the draws of existing ones — the property that
makes A/B comparisons between server architectures noise-free.

Usage::

    streams = SeedStreams(42)
    client_rng = streams.stream("client", 3)     # rng for client #3
    service_rng = streams.stream("service")

The same ``(root_seed, *name parts)`` always yields an identically seeded
``random.Random``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Tuple

__all__ = ["SeedStreams", "derive_seed"]


def derive_seed(root_seed: int, *parts: object) -> int:
    """Derive a child seed from ``root_seed`` and a path of name parts.

    Uses BLAKE2b over the textual path, so the mapping is stable across
    Python versions and processes (unlike ``hash``).
    """
    text = repr((int(root_seed),) + tuple(str(p) for p in parts))
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class SeedStreams:
    """Factory of independent, reproducible ``random.Random`` streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._cache: Dict[Tuple[str, ...], random.Random] = {}

    def seed_for(self, *parts: object) -> int:
        """The derived integer seed for a named stream."""
        return derive_seed(self.root_seed, *parts)

    def stream(self, *parts: object) -> random.Random:
        """Return the ``random.Random`` for the named stream.

        Repeated calls with the same name return the *same* generator
        object (so draws continue, rather than restart).
        """
        key = tuple(str(p) for p in parts)
        rng = self._cache.get(key)
        if rng is None:
            rng = random.Random(derive_seed(self.root_seed, *parts))
            self._cache[key] = rng
        return rng

    def fork(self, *parts: object) -> "SeedStreams":
        """A child :class:`SeedStreams` rooted at a derived seed."""
        return SeedStreams(derive_seed(self.root_seed, "fork", *parts))

    def __repr__(self) -> str:
        return f"<SeedStreams root={self.root_seed} streams={len(self._cache)}>"
