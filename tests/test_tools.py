"""The EXPERIMENTS.md assembler script."""

import importlib.util
import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]


@pytest.fixture
def assembler(tmp_path, monkeypatch):
    spec = importlib.util.spec_from_file_location(
        "assemble_experiments", ROOT / "tools" / "assemble_experiments.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "GENERATED", tmp_path / "generated")
    monkeypatch.setattr(module, "OUTPUT", tmp_path / "EXPERIMENTS.md")
    return module


def test_fails_without_generated_dir(assembler):
    assert assembler.main() == 1


def test_assembles_sections_in_paper_order(assembler):
    assembler.GENERATED.mkdir()
    (assembler.GENERATED / "fig7.md").write_text("### fig7: latency\n")
    (assembler.GENERATED / "fig1.md").write_text("### fig1: rubbos\n")
    (assembler.GENERATED / "scale.txt").write_text("0.5")
    assert assembler.main() == 0
    text = assembler.OUTPUT.read_text()
    assert text.index("fig1: rubbos") < text.index("fig7: latency")
    assert "REPRO_BENCH_SCALE=0.5" in text
    assert text.startswith("# EXPERIMENTS")


def test_warns_on_missing_sections(assembler, capsys):
    assembler.GENERATED.mkdir()
    (assembler.GENERATED / "fig1.md").write_text("### fig1\n")
    assert assembler.main() == 0
    assert "missing sections" in capsys.readouterr().err
