"""Tier applications: proxy, servlet, query."""

import pytest

from repro.net.messages import Request
from repro.ntier.applications import ProxyApplication, QueryApplication, ServletApplication
from repro.ntier.pool import ConnectionPool
from repro.servers.threaded import ThreadedServer
from repro.workload.rubbos import interaction_table


def test_query_application_uses_metadata_cpu(env, cpu):
    app = QueryApplication(default_cpu=1e-3)
    server = ThreadedServer(env, cpu, app=app)
    thread = cpu.thread()
    request = Request(env, "q", 1000)
    request.metadata["db_cpu"] = 5e-3

    def runner(env):
        yield from app.service(server, thread, request)

    env.process(runner(env))
    env.run()
    assert cpu.counters.busy_user >= 5e-3


def test_query_application_default_cpu(env, cpu):
    app = QueryApplication(default_cpu=2e-3, per_byte_cpu=0.0)
    server = ThreadedServer(env, cpu, app=app)
    thread = cpu.thread()
    request = Request(env, "q", 1000)

    def runner(env):
        yield from app.service(server, thread, request)

    env.process(runner(env))
    env.run()
    assert cpu.counters.busy_user == pytest.approx(2e-3)


def test_query_cost_validation():
    with pytest.raises(ValueError):
        QueryApplication(default_cpu=-1)


def test_proxy_forwards_and_returns_same_size(env, cpu, lan, calib):
    downstream = ThreadedServer(env, cpu)
    pool = ConnectionPool(env, downstream, 2, lan, calib)
    proxy_app = ProxyApplication(pool)
    front = ThreadedServer(env, cpu, app=proxy_app)
    from repro.net.tcp import Connection

    conn = Connection(env, lan, calib)
    front.attach(conn)
    request = Request(env, "page", 5000)
    conn.send_request(request)
    env.run(request.completed)
    assert request.completed_at is not None
    assert downstream.stats.requests_completed == 1
    assert pool.in_use == 0  # released


def test_proxy_cpu_validation():
    with pytest.raises(ValueError):
        ProxyApplication(None, per_request_cpu=-1)


def test_servlet_issues_interaction_queries(env, cpu, lan, calib):
    db = ThreadedServer(env, cpu, app=QueryApplication())
    pool = ConnectionPool(env, db, 2, lan, calib)
    app = ServletApplication(pool)
    tomcat = ThreadedServer(env, cpu, app=app)
    from repro.net.tcp import Connection

    conn = Connection(env, lan, calib)
    tomcat.attach(conn)
    interaction = interaction_table()["ViewStory"]  # 2 queries
    request = Request(env, interaction.name, interaction.response_size)
    request.metadata["interaction"] = interaction
    conn.send_request(request)
    env.run(request.completed)
    assert db.stats.requests_completed == len(interaction.queries) == 2


def test_servlet_without_pool_skips_queries(env, cpu):
    app = ServletApplication(None)
    tomcat = ThreadedServer(env, cpu, app=app)
    thread = cpu.thread()
    interaction = interaction_table()["ViewStory"]
    request = Request(env, interaction.name, interaction.response_size)
    request.metadata["interaction"] = interaction

    def runner(env):
        size = yield from app.service(tomcat, thread, request)
        return size

    process = env.process(runner(env))
    assert env.run(process) == interaction.response_size


def test_servlet_falls_back_for_plain_requests(env, cpu, calib):
    app = ServletApplication(None)
    tomcat = ThreadedServer(env, cpu, app=app)
    thread = cpu.thread()
    request = Request(env, "plain", 3000)

    def runner(env):
        size = yield from app.service(tomcat, thread, request)
        return size

    process = env.process(runner(env))
    assert env.run(process) == 3000
    assert cpu.counters.busy_user == pytest.approx(calib.request_cpu_cost(3000))
