"""Three-tier system assembly and miniature runs."""

import pytest

from repro.errors import ExperimentError
from repro.ntier.topology import NTierConfig, ThreeTierSystem, run_ntier
from repro.sim.core import Environment


def test_config_validation():
    with pytest.raises(ExperimentError):
        NTierConfig(tomcat_variant="turbo", users=10).validate()
    with pytest.raises(ExperimentError):
        NTierConfig(tomcat_variant="sync", users=0).validate()
    with pytest.raises(ExperimentError):
        NTierConfig(tomcat_variant="sync", users=10, duration=1.0, warmup=2.0).validate()


def test_system_builds_three_cpus(env):
    system = ThreeTierSystem(env, NTierConfig(tomcat_variant="sync", users=10))
    cpus = system.cpu_by_tier()
    assert set(cpus) == {"apache", "tomcat", "mysql"}
    assert len({id(c) for c in cpus.values()}) == 3


def test_sync_variant_uses_tomcat_sync(env):
    from repro.servers.tomcat import TomcatAsyncServer, TomcatSyncServer

    sync = ThreeTierSystem(env, NTierConfig(tomcat_variant="sync", users=5))
    assert isinstance(sync.app_server, TomcatSyncServer)
    env2 = Environment()
    async_ = ThreeTierSystem(env2, NTierConfig(tomcat_variant="async", users=5))
    assert isinstance(async_.app_server, TomcatAsyncServer)


def test_pools_bound_tomcat_concurrency(env):
    config = NTierConfig(tomcat_variant="sync", users=5, apache_tomcat_pool=7)
    system = ThreeTierSystem(env, config)
    assert system.apache_tomcat_pool.size == 7
    assert len(system.app_server.connections) == 7


def mini_config(variant, users=40):
    return NTierConfig(
        tomcat_variant=variant,
        users=users,
        think_mean=0.05,
        duration=2.0,
        warmup=0.8,
    )


def mini_run(variant, users=40):
    # Cached: identical configs across tests simulate once per code version.
    from repro.experiments.parallel import cached_ntier

    return cached_ntier(mini_config(variant, users), label="topology-mini")


@pytest.mark.parametrize("variant", ["sync", "async"])
def test_mini_run_completes_requests(variant):
    result = mini_run(variant)
    assert result.throughput > 0
    assert result.response_time > 0
    assert result.report.completed > 10


def test_mini_run_bottleneck_is_tomcat():
    result = mini_run("sync", users=120)
    assert result.bottleneck_tier == "tomcat"
    assert result.tier_utilization["tomcat"] > result.tier_utilization["mysql"]


def test_peak_concurrency_bounded_by_pool():
    result = mini_run("sync", users=120)
    assert result.tomcat_peak_concurrency <= 40


def test_deterministic_given_seed():
    a = run_ntier(mini_config("sync"))
    b = run_ntier(mini_config("sync"))
    assert a.throughput == b.throughput
    assert a.response_time == b.response_time
