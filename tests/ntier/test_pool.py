"""Inter-tier connection pool."""

import pytest

from repro.ntier.pool import ConnectionPool
from repro.servers.threaded import ThreadedServer


def make_pool(env, cpu, lan, calib, size=2):
    server = ThreadedServer(env, cpu)
    return ConnectionPool(env, server, size, lan, calib)


def test_size_validation(env, cpu, lan, calib):
    with pytest.raises(ValueError):
        make_pool(env, cpu, lan, calib, size=0)


def test_pool_attaches_connections_to_downstream(env, cpu, lan, calib):
    server = ThreadedServer(env, cpu)
    pool = ConnectionPool(env, server, 3, lan, calib)
    assert len(server.connections) == 3
    assert pool.idle == 3


def test_acquire_release_cycle(env, cpu, lan, calib):
    pool = make_pool(env, cpu, lan, calib, size=2)

    def worker(env, pool):
        conn = yield pool.acquire()
        assert pool.in_use == 1
        pool.release(conn)
        assert pool.in_use == 0
        return conn

    process = env.process(worker(env, pool))
    env.run(process)
    assert process.value is not None


def test_acquire_blocks_when_exhausted(env, cpu, lan, calib):
    pool = make_pool(env, cpu, lan, calib, size=1)
    order = []

    def holder(env, pool):
        conn = yield pool.acquire()
        order.append("got-1")
        yield env.timeout(1.0)
        pool.release(conn)

    def waiter(env, pool):
        yield env.timeout(0.1)
        conn = yield pool.acquire()
        order.append(("got-2", env.now))
        pool.release(conn)

    env.process(holder(env, pool))
    env.process(waiter(env, pool))
    env.run()
    assert order == ["got-1", ("got-2", 1.0)]


def test_peak_in_use_tracked(env, cpu, lan, calib):
    pool = make_pool(env, cpu, lan, calib, size=3)

    def worker(env, pool):
        conn = yield pool.acquire()
        yield env.timeout(1.0)
        pool.release(conn)

    for _ in range(3):
        env.process(worker(env, pool))
    env.run()
    assert pool.peak_in_use == 3
    assert pool.in_use == 0


def test_released_connections_recycle_fifo(env, cpu, lan, calib):
    pool = make_pool(env, cpu, lan, calib, size=1)
    seen = []

    def worker(env, pool):
        conn = yield pool.acquire()
        seen.append(conn)
        pool.release(conn)

    for _ in range(3):
        env.process(worker(env, pool))
    env.run()
    assert seen[0] is seen[1] is seen[2]
