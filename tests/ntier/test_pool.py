"""Inter-tier connection pool."""

import pytest

from repro.errors import SimulationError
from repro.faults import FaultInjector, FaultPlan
from repro.net.messages import Request
from repro.net.tcp import Connection
from repro.ntier.pool import ConnectionPool
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.policy import BreakerConfig
from repro.servers.threaded import ThreadedServer
from repro.sim.rng import SeedStreams


def make_pool(env, cpu, lan, calib, size=2):
    server = ThreadedServer(env, cpu)
    return ConnectionPool(env, server, size, lan, calib)


def test_size_validation(env, cpu, lan, calib):
    with pytest.raises(ValueError):
        make_pool(env, cpu, lan, calib, size=0)


def test_pool_attaches_connections_to_downstream(env, cpu, lan, calib):
    server = ThreadedServer(env, cpu)
    pool = ConnectionPool(env, server, 3, lan, calib)
    assert len(server.connections) == 3
    assert pool.idle == 3


def test_acquire_release_cycle(env, cpu, lan, calib):
    pool = make_pool(env, cpu, lan, calib, size=2)

    def worker(env, pool):
        conn = yield pool.acquire()
        assert pool.in_use == 1
        pool.release(conn)
        assert pool.in_use == 0
        return conn

    process = env.process(worker(env, pool))
    env.run(process)
    assert process.value is not None


def test_acquire_blocks_when_exhausted(env, cpu, lan, calib):
    pool = make_pool(env, cpu, lan, calib, size=1)
    order = []

    def holder(env, pool):
        conn = yield pool.acquire()
        order.append("got-1")
        yield env.timeout(1.0)
        pool.release(conn)

    def waiter(env, pool):
        yield env.timeout(0.1)
        conn = yield pool.acquire()
        order.append(("got-2", env.now))
        pool.release(conn)

    env.process(holder(env, pool))
    env.process(waiter(env, pool))
    env.run()
    assert order == ["got-1", ("got-2", 1.0)]


def test_peak_in_use_tracked(env, cpu, lan, calib):
    pool = make_pool(env, cpu, lan, calib, size=3)

    def worker(env, pool):
        conn = yield pool.acquire()
        yield env.timeout(1.0)
        pool.release(conn)

    for _ in range(3):
        env.process(worker(env, pool))
    env.run()
    assert pool.peak_in_use == 3
    assert pool.in_use == 0


def test_released_connections_recycle_fifo(env, cpu, lan, calib):
    pool = make_pool(env, cpu, lan, calib, size=1)
    seen = []

    def worker(env, pool):
        conn = yield pool.acquire()
        seen.append(conn)
        pool.release(conn)

    for _ in range(3):
        env.process(worker(env, pool))
    env.run()
    assert seen[0] is seen[1] is seen[2]


# ----------------------------------------------------------------------
# Liveness on release (PR 4 bugfix): dead connections must not poison
# the next borrower.
# ----------------------------------------------------------------------
def test_dead_connection_evicted_on_release(env, cpu, lan, calib):
    pool = make_pool(env, cpu, lan, calib, size=1)
    seen = []

    def worker(env, pool):
        conn = yield pool.acquire()
        seen.append(conn)
        conn.close()  # dies while checked out (reset, deadline abandon)
        pool.release(conn)

    def next_borrower(env, pool):
        conn = yield pool.acquire()
        seen.append(conn)
        pool.release(conn)

    env.process(worker(env, pool))
    env.process(next_borrower(env, pool))
    env.run()
    assert pool.evictions == 1
    assert seen[1] is not seen[0]  # replacement, not the corpse
    assert not seen[1].closed
    assert pool.idle == 1  # pool capacity preserved
    assert len(pool.connections) == pool.size


def test_fault_injected_reset_triggers_eviction(env, cpu, lan, calib):
    """Regression: a FaultPlan reset used to leave a closed connection in
    the pool; the next borrower then died on send_request."""
    server = ThreadedServer(env, cpu)
    pool = ConnectionPool(env, server, 1, lan, calib)
    injector = FaultInjector(
        env, FaultPlan(reset_after_requests=1), SeedStreams(1).fork("faults")
    )
    # Arm the pooled connection with the reset plan, as a chaos run would.
    pool.connections[0].faults = injector.for_connection(0)
    outcomes = []

    def borrower(env, pool):
        conn = yield pool.acquire()
        request = Request(env, "q", 100)
        conn.send_request(request)  # the arrival itself injects the reset
        yield env.any_of([request.completed, conn.on_close])
        outcomes.append("dead" if conn.closed else "ok")
        pool.release(conn)

    def second_borrower(env, pool):
        conn = yield pool.acquire()
        request = Request(env, "q", 100)
        conn.send_request(request)  # must NOT raise ConnectionClosedError
        yield request.completed
        outcomes.append("served")
        pool.release(conn)

    env.process(borrower(env, pool))
    env.process(second_borrower(env, pool))
    env.run()
    assert outcomes == ["dead", "served"]
    assert pool.evictions == 1
    assert injector.connection_resets == 1
    # The replacement is attached to the downstream server.
    assert pool.connections[0] in server.connections
    assert len(pool.connections) == pool.size


def test_acquire_within_grants_when_idle(env, cpu, lan, calib):
    pool = make_pool(env, cpu, lan, calib, size=1)
    got = []

    def worker(env, pool):
        conn = yield from pool.acquire_within(0.5)
        got.append(conn)
        pool.release(conn)

    env.process(worker(env, pool))
    env.run()
    assert got[0] is not None
    assert pool.idle == 1


def test_acquire_within_times_out_and_withdraws_claim(env, cpu, lan, calib):
    pool = make_pool(env, cpu, lan, calib, size=1)
    results = []

    def holder(env, pool):
        conn = yield pool.acquire()
        yield env.timeout(1.0)
        pool.release(conn)

    def impatient(env, pool):
        conn = yield from pool.acquire_within(0.1)
        results.append(("impatient", conn, env.now))

    def patient(env, pool):
        conn = yield pool.acquire()
        results.append(("patient", conn, env.now))
        pool.release(conn)

    env.process(holder(env, pool))
    env.process(impatient(env, pool))
    env.process(patient(env, pool))
    env.run()
    # The impatient caller gave up; its withdrawn claim must NOT swallow
    # the connection freed at t=1.0 — the patient caller gets it.
    assert results[0] == ("impatient", None, 0.1)
    assert results[1][0] == "patient"
    assert results[1][1] is not None
    assert results[1][2] == pytest.approx(1.0)
    assert pool.idle == 1


# ----------------------------------------------------------------------
# PR 6 bugfix sweep: grant-vs-timeout races and ownership violations.
# ----------------------------------------------------------------------
def test_acquire_within_same_tick_grant_wins(env, cpu, lan, calib):
    """A release landing in the exact deadline tick is taken, not dropped."""
    pool = make_pool(env, cpu, lan, calib, size=1)
    results = []

    def holder(env, pool):
        conn = yield pool.acquire()
        yield env.timeout(0.1)  # released at exactly the waiter's deadline
        pool.release(conn)

    def waiter(env, pool):
        conn = yield from pool.acquire_within(0.1)
        results.append((conn, env.now))
        if conn is not None:
            pool.release(conn)

    env.process(holder(env, pool))
    env.process(waiter(env, pool))
    env.run()
    assert results[0][0] is not None
    assert results[0][1] == pytest.approx(0.1)
    assert pool.in_use == 0
    assert pool.idle == 1


def test_acquire_within_failed_cancel_returns_connection(env, cpu, lan, calib):
    """Regression: ``acquire_within`` discarded ``Store.cancel``'s return
    value.  When the grant races the deadline tick — the claim's item was
    assigned an instant before the withdrawal, so cancel returns False —
    the granted connection used to leak out of the pool forever (and
    ``in_use`` stayed wrong).  The race is injected deterministically by
    wrapping the store's cancel to release the held connection first."""
    pool = make_pool(env, cpu, lan, calib, size=1)
    store = pool._idle
    real_cancel = store.cancel
    held = []
    cancel_results = []

    def racing_cancel(get):
        # The holder's release lands just before the withdrawal: the put
        # assigns the idle connection to the pending claim, so the real
        # cancel below finds it already served and returns False.
        pool.release(held[0])
        outcome = real_cancel(get)
        cancel_results.append(outcome)
        return outcome

    store.cancel = racing_cancel
    results = []

    def holder(env, pool):
        conn = yield pool.acquire()
        held.append(conn)
        yield env.timeout(10.0)  # never releases; racing_cancel does

    def impatient(env, pool):
        conn = yield from pool.acquire_within(0.1)
        results.append((conn, env.now))

    def late_borrower(env, pool):
        yield env.timeout(0.2)
        conn = yield pool.acquire()
        results.append((conn, env.now))
        pool.release(conn)

    env.process(holder(env, pool))
    env.process(impatient(env, pool))
    env.process(late_borrower(env, pool))
    env.run()
    # The cancel genuinely failed, the caller still got None...
    assert cancel_results == [False]
    assert results[0] == (None, 0.1)
    # ...and the granted connection went back to the pool instead of
    # leaking: accounting intact, next borrower served immediately.
    assert pool.in_use == 0
    assert pool.idle == 1
    assert len(pool.connections) == pool.size
    assert results[1][0] is not None
    assert results[1][1] == pytest.approx(0.2)


def test_release_rejects_foreign_dead_connection(env, cpu, lan, calib):
    """Regression: a dead connection the pool never owned used to append
    a *replacement* anyway, silently growing the pool past ``size`` and
    breaking the concurrency bound.  Now it fails loudly."""
    pool = make_pool(env, cpu, lan, calib, size=2)
    stranger = ThreadedServer(env, cpu)
    foreign = Connection(env, lan, calib)
    stranger.attach(foreign)
    foreign.close()
    with pytest.raises(SimulationError):
        pool.release(foreign)
    assert len(pool.connections) == pool.size
    assert pool.idle == pool.size


def test_eviction_records_no_breaker_outcome(env, cpu, lan, calib):
    """Evicting a dead connection must stay silent on the breaker: the
    caller of the failed exchange already records that same incident, so
    a second signal here would double-count it (see ``release``)."""
    server = ThreadedServer(env, cpu)
    breaker = CircuitBreaker(env, BreakerConfig())
    pool = ConnectionPool(env, server, 1, lan, calib, breaker=breaker)

    def worker(env, pool):
        conn = yield pool.acquire()
        conn.close()
        pool.release(conn)

    env.process(worker(env, pool))
    env.run()
    assert pool.evictions == 1
    assert breaker.state == "closed"
    assert breaker.opens == 0
    assert breaker.fast_failures == 0
    assert len(breaker._window) == 0  # no success OR failure recorded
