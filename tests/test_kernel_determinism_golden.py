"""Golden-digest determinism gate for the DES kernel fast path.

The kernel optimisations (``__slots__``, pooled timeouts, lazy timeout
cancellation, the coalesced blocked-writer path) are required to keep
simulation results **bit-identical**: same event ordering, same RNG draws,
same report floats.  This test pins that guarantee to golden digests
computed *before* the fast path landed: one short configuration per server
architecture (plus a chaos-plan configuration exercising faults and
retries), each hashed over the full :class:`RunReport` and the server
counters.

The digests must match at ``jobs=1`` and ``jobs=4`` — the parallel sweep
executor fans points across worker processes and must still reproduce the
serial rows exactly.

If a *deliberate* behaviour change ever invalidates these digests,
regenerate them with::

    PYTHONPATH=src python tests/test_kernel_determinism_golden.py

and paste the printed dict over ``GOLDEN`` — in a commit that explains why
results were allowed to move.
"""

from __future__ import annotations

import dataclasses
import hashlib

import pytest

from repro.experiments.micro import MicroConfig

#: The digest matrix doubles as the flow-level TCP fast path's equivalence
#: contract: `REPRO_TCP_FASTPATH=0 pytest -m tcpfast` re-runs it on the
#: per-segment path and must produce the same GOLDEN rows bit-for-bit.
pytestmark = pytest.mark.tcpfast
from repro.cache import CacheConfig
from repro.cohort import CohortConfig
from repro.dag import DagConfig, Edge, ServiceNode
from repro.experiments.parallel import SweepExecutor
from repro.faults import CrashWindow, DegradeWindow, FaultPlan, StallWindow
from repro.ntier.topology import NTierConfig
from repro.replica import ReplicaConfig
from repro.resilience import (
    AdmissionConfig,
    BreakerConfig,
    HedgeConfig,
    ResiliencePolicy,
    RetryBudgetConfig,
)
from repro.workload.client import RetryPolicy

#: One short-but-representative config per architecture.  100KB responses
#: for the single-threaded server so the write-spin path is in the hash.
_CONFIGS = {
    "sTomcat-Sync": MicroConfig("sTomcat-Sync", 8, duration=0.4, warmup=0.1),
    "sTomcat-Async": MicroConfig("sTomcat-Async", 8, duration=0.4, warmup=0.1),
    "sTomcat-Async-Fix": MicroConfig("sTomcat-Async-Fix", 8, duration=0.4, warmup=0.1),
    "SingleT-Async": MicroConfig(
        "SingleT-Async", 8, response_size=102_400, duration=0.4, warmup=0.1
    ),
    "NettyServer": MicroConfig(
        "NettyServer", 8, response_size=102_400, duration=0.4, warmup=0.1
    ),
    "HybridNetty": MicroConfig("HybridNetty", 8, duration=0.4, warmup=0.1),
    "TomcatSync": MicroConfig("TomcatSync", 8, duration=0.4, warmup=0.1),
    "TomcatAsync": MicroConfig("TomcatAsync", 8, duration=0.4, warmup=0.1),
    "Staged-SEDA": MicroConfig("Staged-SEDA", 8, duration=0.4, warmup=0.1),
    "N-copy": MicroConfig("N-copy", 8, duration=0.4, warmup=0.1),
    # Chaos: fault injection + client retries + a CPU stall, so the lazy
    # cancellation of abandoned retry deadlines is covered by the digest.
    "chaos": MicroConfig(
        "SingleT-Async",
        8,
        duration=0.4,
        warmup=0.1,
        fault_plan=FaultPlan(
            segment_loss_prob=0.05,
            latency_spike_prob=0.10,
            latency_spike=0.005,
            reset_request_prob=0.01,
            client_abort_prob=0.05,
            client_abort_delay=0.010,
            server_stalls=(StallWindow(start=0.10, duration=0.03),),
            rto=0.050,
        ),
        retry=RetryPolicy(timeout=0.05, max_retries=2, backoff_base=0.005),
    ),
    # Resilience: the same chaos plan with the cross-tier stack switched on
    # (deadline + retry budget + adaptive admission), pinning the budget
    # gate, deadline truncation and AIMD limiter into the digest matrix.
    "resilience": MicroConfig(
        "SingleT-Async",
        8,
        duration=0.4,
        warmup=0.1,
        fault_plan=FaultPlan(
            segment_loss_prob=0.05,
            latency_spike_prob=0.10,
            latency_spike=0.005,
            reset_request_prob=0.01,
            client_abort_prob=0.05,
            client_abort_delay=0.010,
            server_stalls=(StallWindow(start=0.10, duration=0.03),),
            rto=0.050,
        ),
        retry=RetryPolicy(timeout=0.05, max_retries=2, backoff_base=0.005),
        resilience=ResiliencePolicy(
            deadline=0.2,
            retry_budget=RetryBudgetConfig(ratio=0.2),
            admission=AdmissionConfig(target_latency=0.05, min_limit=4),
        ),
    ),
}

#: Golden digests recorded against the pre-fast-path kernel (PR 3).
GOLDEN = {
    "sTomcat-Sync": "7f58acae3b2c0c20",
    "sTomcat-Async": "f54759bc1b0ed4e7",
    "sTomcat-Async-Fix": "580e967d52026e7f",
    "SingleT-Async": "b841cdf370cd8b68",
    "NettyServer": "9797625cd3577d59",
    "HybridNetty": "1f9527037cd0e4ca",
    "TomcatSync": "071dabc866460982",
    "TomcatAsync": "efc96f3efe5fd3fe",
    "Staged-SEDA": "fb4c096321641aa3",
    "N-copy": "7d80b417c5f575a8",
    "chaos": "023a9b66ebebebac",
    "resilience": "426ba4a474da6b7d",
}

#: Golden digests for the cache-enabled n-tier rows (PR 6).  Recorded
#: with the same regeneration helper; all 12 ``GOLDEN`` rows above were
#: verified byte-identical in the same run (zero-impact contract).
GOLDEN_NTIER = {
    "cache": "04873799a633fd53",
    "cache-aside": "d33aee503d422319",
}


#: A 3-tier run with the cache tier switched on (both levels, TTL expiry,
#: LRU eviction, write-through refills, single-flight, prewarm), pinning
#: the cache layer's event sequence and counters into the digest matrix.
#: Kept separate from the micro configs: it runs through ``map_ntier``.
_NTIER_CONFIGS = {
    "cache": NTierConfig(
        tomcat_variant="async",
        users=40,
        think_mean=0.5,
        duration=2.0,
        warmup=0.8,
        timeline_bucket=0.25,
        seed=5,
        cache=CacheConfig(
            policy="write_through",
            ttl=0.5,
            capacity=64,
            l2_capacity=256,
            l2_ttl=1.0,
            write_ratio=0.1,
            keys_per_class=4,
            prewarm=True,
        ),
    ),
    # Cache-aside without single-flight (invalidation path + duplicate
    # fetches), so both write policies and both coalescing modes are
    # digest-pinned.  Two rows also force a real process fan-out in the
    # jobs=4 run (a single pending point would fall back to serial).
    "cache-aside": NTierConfig(
        tomcat_variant="sync",
        users=40,
        think_mean=0.5,
        duration=2.0,
        warmup=0.8,
        timeline_bucket=0.25,
        seed=6,
        cache=CacheConfig(
            policy="cache_aside",
            ttl=0.4,
            capacity=32,
            write_ratio=0.15,
            keys_per_class=2,
            single_flight=False,
        ),
    ),
}


#: Golden digests for the replica-enabled n-tier rows (PR 7), recorded
#: with the regeneration helper; all earlier rows were verified
#: byte-identical in the same run (zero-impact contract).
GOLDEN_REPLICA = {
    "failover": "f908a36f52e6965c",
    "hedged": "f272d9d9edf07c96",
}

#: Replicated 3-tier runs: a crash-restart mid-run with round-robin
#: balancing and passive ejection, and a least-outstanding + hedging +
#: per-replica-cache row, pinning the whole failover layer's event
#: sequence (crash connection resets, cold restarts, probes, hedge
#: cancellation) into the digest matrix.
_REPLICA_CONFIGS = {
    "failover": NTierConfig(
        tomcat_variant="async",
        users=40,
        think_mean=0.5,
        duration=2.5,
        warmup=0.5,
        timeline_bucket=0.25,
        seed=5,
        retry=RetryPolicy(timeout=0.4, max_retries=2, backoff_base=0.02),
        resilience=ResiliencePolicy(
            retry_budget=RetryBudgetConfig(ratio=0.2),
            breaker=BreakerConfig(open_duration=0.2),
        ),
        fault_plan=FaultPlan(
            crash_windows=(CrashWindow(start=1.0, end=1.5, warmup=0.1),),
        ),
        replica=ReplicaConfig(
            replicas=3,
            policy="round_robin",
            ejection_threshold=3,
            ejection_duration=0.1,
            probe_interval=0.25,
        ),
    ),
    # Least-outstanding balancing + hedging + a per-replica cache, with
    # the crash hitting instance 2 — covers the other balancer policy,
    # the hedge win/cancel path, and a cold cache restart.
    "hedged": NTierConfig(
        tomcat_variant="sync",
        users=40,
        think_mean=0.5,
        duration=2.5,
        warmup=0.5,
        timeline_bucket=0.25,
        seed=6,
        retry=RetryPolicy(timeout=0.4, max_retries=2, backoff_base=0.02),
        resilience=ResiliencePolicy(
            retry_budget=RetryBudgetConfig(ratio=0.2),
            breaker=BreakerConfig(open_duration=0.2),
            hedge=HedgeConfig(
                quantile=0.9, min_delay=0.005, initial_delay=0.02,
                min_samples=10,
            ),
        ),
        cache=CacheConfig(
            policy="cache_aside",
            ttl=0.5,
            capacity=32,
            keys_per_class=2,
            prewarm=True,
        ),
        fault_plan=FaultPlan(
            crash_windows=(CrashWindow(start=1.0, end=1.5, instance=2,
                                       warmup=0.1),),
        ),
        replica=ReplicaConfig(
            replicas=3,
            policy="least_outstanding",
            ejection_threshold=3,
            ejection_duration=0.1,
        ),
    ),
}


#: Golden digests for the cohort aggregation engine (PR 8), recorded with
#: the regeneration helper; all earlier rows were verified byte-identical
#: in the same run (zero-impact contract: a lazy cohort config changes
#: nothing unless it is actually attached to a run).
GOLDEN_COHORT = {
    "cohort-chaos": "63624588654fbe21",
    "cohort-idle": "7fa549fce84f6558",
}

#: Lazy-cohort micro runs: one episode-heavy chaos row (faults + client
#: retries force materialization, watchdog timeouts and fold-back into
#: the hash) and one mostly-idle superposition row (20k members on the
#: aggregate exponential clock — the million-client regime, scaled to a
#: digest-friendly runtime).  The lazy engine is *not* digest-compatible
#: with the classic builder (different event order by design), so these
#: rows pin its own behaviour instead.
_COHORT_CONFIGS = {
    "cohort-chaos": MicroConfig(
        "SingleT-Async",
        2000,
        duration=1.5,
        warmup=0.3,
        think_mean=0.5,
        fault_plan=FaultPlan(
            reset_request_prob=0.005,
            client_abort_prob=0.02,
            rto=0.05,
        ),
        retry=RetryPolicy(timeout=0.1, max_retries=2, backoff_base=0.01),
        cohort=CohortConfig(first_think=True, max_inflight=64),
    ),
    "cohort-idle": MicroConfig(
        "SingleT-Async",
        20_000,
        duration=1.0,
        warmup=0.2,
        think_mean=50.0,
        cohort=CohortConfig(first_think=True, max_inflight=32),
    ),
}


#: Golden digests for the DAG topology rows (PR 9), recorded with the
#: regeneration helper; all earlier rows were verified byte-identical in
#: the same run (zero-impact contract: `dag=None` builds the exact same
#: linear chain as before the DAG layer existed).
GOLDEN_DAG = {
    "dag-fanout": "2794f5ea8e791597",
    "dag-quorum": "9694f0d29a1c1724",
}

#: DAG 3-tier rows: a mixed sync/async fan-out with best-effort fan-in
#: and per-edge breakers, and a quorum row with a replicated leaf under
#: a gray-failure DegradeWindow (CPU slowdown + latency-aware ejection),
#: pinning the whole DAG layer's event sequence — worker-thread fan-out,
#: join bookkeeping, branch cancellation, degraded accounting — into the
#: digest matrix.  Two rows also force a real process fan-out at jobs=4.
_DAG_CONFIGS = {
    "dag-fanout": NTierConfig(
        tomcat_variant="async",
        users=40,
        think_mean=0.5,
        duration=2.0,
        warmup=0.5,
        timeline_bucket=0.25,
        seed=5,
        resilience=ResiliencePolicy(
            deadline=0.2,
            breaker=BreakerConfig(open_duration=0.2),
        ),
        dag=DagConfig(
            entry="compose",
            nodes=(
                ServiceNode(
                    name="compose",
                    edges=(
                        Edge("text"),
                        Edge("media"),
                        Edge("store", mode="sync"),
                    ),
                    fan_in="best_effort",
                    best_effort_timeout=0.02,
                    service_cpu=100.0e-6,
                ),
                ServiceNode(name="text", service_cpu=200.0e-6,
                            service_jitter=0.8),
                ServiceNode(name="media", service_cpu=300.0e-6,
                            service_jitter=0.8),
                ServiceNode(name="store", service_cpu=150.0e-6),
            ),
        ),
    ),
    # Quorum fan-in over a replicated leaf with one gray replica: the
    # DegradeWindow CPU slowdown, the latency-EWMA ejection path and the
    # degraded-response accounting all land in the hash.  Fault targets
    # flatten in declaration order (compose=0, text replicas 1..2, ...),
    # so instance=1 is text replica 0.
    "dag-quorum": NTierConfig(
        tomcat_variant="async",
        users=40,
        think_mean=0.5,
        duration=2.5,
        warmup=0.5,
        timeline_bucket=0.25,
        seed=6,
        resilience=ResiliencePolicy(deadline=0.1),
        fault_plan=FaultPlan(
            degrade_windows=(
                DegradeWindow(start=1.0, end=1.8, instance=1, share=0.9),
            ),
        ),
        dag=DagConfig(
            entry="compose",
            nodes=(
                ServiceNode(
                    name="compose",
                    edges=(Edge("text"), Edge("media"), Edge("graph")),
                    fan_in="quorum",
                    quorum=2,
                    service_cpu=100.0e-6,
                ),
                ServiceNode(
                    name="text",
                    service_cpu=200.0e-6,
                    replica=ReplicaConfig(
                        replicas=2,
                        policy="round_robin",
                        latency_factor=3.0,
                        latency_min_samples=5,
                        ejection_duration=0.2,
                    ),
                ),
                ServiceNode(name="media", service_cpu=200.0e-6),
                ServiceNode(name="graph", service_cpu=200.0e-6),
            ),
        ),
    ),
}


def _digest_result(result) -> str:
    """Stable hash of everything a run reports."""
    payload = (
        dataclasses.asdict(result.report),
        sorted(result.server_stats.items()),
        sorted(result.client_stats.items()),
    )
    if result.resilience:
        # Appended only when the resilience stack ran, so the digests of
        # the pre-resilience configs stay byte-for-byte stable.
        payload = payload + (sorted(result.resilience.items()),)
    cache_stats = getattr(result, "cache_stats", None)
    if cache_stats:
        # Same population rule for the cache tier (PR 6).
        payload = payload + (sorted(cache_stats.items()),)
    replica_stats = getattr(result, "replica_stats", None)
    if replica_stats:
        # Same population rule for the replica layer (PR 7).
        payload = payload + (sorted(replica_stats.items()),)
    cohort_stats = getattr(result, "cohort_stats", None)
    if cohort_stats:
        # Same population rule for the cohort engine (PR 8).
        payload = payload + (sorted(cohort_stats.items()),)
    dag_stats = getattr(result, "dag_stats", None)
    if dag_stats:
        # Same population rule for the DAG layer (PR 9).
        payload = payload + (sorted(dag_stats.items()),)
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()[:16]


def _run_all(jobs: int) -> dict:
    executor = SweepExecutor("golden", scale=1.0, jobs=jobs, cache_dir=None)
    results = executor.map_micro(dict(_CONFIGS))
    return {name: _digest_result(result) for name, result in results.items()}


def _run_all_ntier(jobs: int) -> dict:
    """The n-tier rows, with the cache kill switch pinned *on*.

    Pinning ``REPRO_CACHE=1`` keeps the digest meaningful even when the
    developer's shell disables the tier; worker processes inherit it.
    """
    with pytest.MonkeyPatch.context() as patch:
        patch.setenv("REPRO_CACHE", "1")
        executor = SweepExecutor("golden", scale=1.0, jobs=jobs, cache_dir=None)
        results = executor.map_ntier(dict(_NTIER_CONFIGS))
        return {name: _digest_result(result) for name, result in results.items()}


@pytest.fixture(scope="module")
def serial_digests() -> dict:
    return _run_all(jobs=1)


def test_golden_digests_serial(serial_digests):
    assert serial_digests == GOLDEN


def test_golden_digests_parallel_fanout(serial_digests):
    """jobs=4 must reproduce the serial (and therefore golden) rows."""
    assert _run_all(jobs=4) == GOLDEN == serial_digests


@pytest.fixture(scope="module")
def serial_ntier_digests() -> dict:
    return _run_all_ntier(jobs=1)


@pytest.mark.cache
def test_golden_ntier_cache_digest_serial(serial_ntier_digests):
    assert serial_ntier_digests == GOLDEN_NTIER


@pytest.mark.cache
def test_golden_ntier_cache_digest_parallel(serial_ntier_digests):
    """jobs=4 must reproduce the cache-enabled n-tier row too."""
    assert _run_all_ntier(jobs=4) == GOLDEN_NTIER == serial_ntier_digests


def _run_all_replica(jobs: int) -> dict:
    """The replica rows, with both kill switches pinned *on*.

    ``REPRO_REPLICA=1`` keeps the replicated build path active (the
    "hedged" row also needs ``REPRO_CACHE=1`` for its per-replica
    caches); worker processes inherit both.
    """
    with pytest.MonkeyPatch.context() as patch:
        patch.setenv("REPRO_REPLICA", "1")
        patch.setenv("REPRO_CACHE", "1")
        executor = SweepExecutor("golden", scale=1.0, jobs=jobs, cache_dir=None)
        results = executor.map_ntier(dict(_REPLICA_CONFIGS))
        return {name: _digest_result(result) for name, result in results.items()}


@pytest.fixture(scope="module")
def serial_replica_digests() -> dict:
    return _run_all_replica(jobs=1)


@pytest.mark.failover
def test_golden_ntier_replica_digest_serial(serial_replica_digests):
    assert serial_replica_digests == GOLDEN_REPLICA


@pytest.mark.failover
def test_golden_ntier_replica_digest_parallel(serial_replica_digests):
    """jobs=4 must reproduce the replica-enabled n-tier rows too."""
    assert _run_all_replica(jobs=4) == GOLDEN_REPLICA == serial_replica_digests


def _run_all_cohort(jobs: int) -> dict:
    """The lazy-cohort rows, with the cohort kill switch pinned *on*.

    Pinning ``REPRO_COHORT=1`` keeps the digest meaningful even when the
    developer's shell disables the engine; worker processes inherit it.
    """
    with pytest.MonkeyPatch.context() as patch:
        patch.setenv("REPRO_COHORT", "1")
        executor = SweepExecutor("golden", scale=1.0, jobs=jobs, cache_dir=None)
        results = executor.map_micro(dict(_COHORT_CONFIGS))
        return {name: _digest_result(result) for name, result in results.items()}


@pytest.fixture(scope="module")
def serial_cohort_digests() -> dict:
    return _run_all_cohort(jobs=1)


@pytest.mark.cohort
def test_golden_cohort_digest_serial(serial_cohort_digests):
    assert serial_cohort_digests == GOLDEN_COHORT


@pytest.mark.cohort
def test_golden_cohort_digest_parallel(serial_cohort_digests):
    """jobs=4 must reproduce the lazy-cohort rows too."""
    assert _run_all_cohort(jobs=4) == GOLDEN_COHORT == serial_cohort_digests


def _run_all_dag(jobs: int) -> dict:
    """The DAG rows, with the DAG and replica kill switches pinned *on*.

    ``REPRO_DAG=1`` keeps the DAG build path active (the "dag-quorum"
    row also needs ``REPRO_REPLICA=1`` for its replicated leaf); worker
    processes inherit both.
    """
    with pytest.MonkeyPatch.context() as patch:
        patch.setenv("REPRO_DAG", "1")
        patch.setenv("REPRO_REPLICA", "1")
        executor = SweepExecutor("golden", scale=1.0, jobs=jobs, cache_dir=None)
        results = executor.map_ntier(dict(_DAG_CONFIGS))
        return {name: _digest_result(result) for name, result in results.items()}


@pytest.fixture(scope="module")
def serial_dag_digests() -> dict:
    return _run_all_dag(jobs=1)


@pytest.mark.dag
def test_golden_dag_digest_serial(serial_dag_digests):
    assert serial_dag_digests == GOLDEN_DAG


@pytest.mark.dag
def test_golden_dag_digest_parallel(serial_dag_digests):
    """jobs=4 must reproduce the DAG rows too."""
    assert _run_all_dag(jobs=4) == GOLDEN_DAG == serial_dag_digests


if __name__ == "__main__":  # pragma: no cover - digest regeneration helper
    digests = _run_all(jobs=1)
    print("GOLDEN = {")
    for name, digest in digests.items():
        print(f"    {name!r}: {digest!r},")
    print("}")
    ntier_digests = _run_all_ntier(jobs=1)
    print("GOLDEN_NTIER = {")
    for name, digest in ntier_digests.items():
        print(f"    {name!r}: {digest!r},")
    print("}")
    replica_digests = _run_all_replica(jobs=1)
    print("GOLDEN_REPLICA = {")
    for name, digest in replica_digests.items():
        print(f"    {name!r}: {digest!r},")
    print("}")
    cohort_digests = _run_all_cohort(jobs=1)
    print("GOLDEN_COHORT = {")
    for name, digest in cohort_digests.items():
        print(f"    {name!r}: {digest!r},")
    print("}")
    dag_digests = _run_all_dag(jobs=1)
    print("GOLDEN_DAG = {")
    for name, digest in dag_digests.items():
        print(f"    {name!r}: {digest!r},")
    print("}")
