"""Latency-aware outlier ejection: the gray-failure detector.

Consecutive-failure ejection never notices a slow-but-alive replica —
every request *succeeds*, slowly — so the balancer keeps an EWMA of
each replica's success latency and ejects an instance whose EWMA is a
configured factor above the upper-median of its peers'.  These tests
drive :meth:`LoadBalancer.on_success` directly with synthetic latency
samples.
"""

import pytest

from repro.replica import LoadBalancer, Replica, ReplicaConfig
from repro.sim.core import Environment

pytestmark = [pytest.mark.failover, pytest.mark.dag]


class _Server:
    def __init__(self):
        self.down = False
        self.connections = []


def _balancer(env, n=3, **overrides):
    defaults = dict(
        replicas=n, latency_factor=3.0, latency_alpha=0.2,
        latency_min_samples=4, ejection_threshold=3,
        ejection_duration=1.0, ejection_backoff=2.0,
        ejection_max_duration=8.0,
    )
    defaults.update(overrides)
    replicas = [Replica(i, _Server(), None, None) for i in range(n)]
    return LoadBalancer(env, ReplicaConfig(**defaults), replicas), replicas


def _feed(lb, replica, latency, times):
    for _ in range(times):
        lb.on_success(replica, latency=latency)


def test_first_sample_seeds_the_ewma():
    lb, replicas = _balancer(Environment())
    lb.on_success(replicas[0], latency=0.010)
    assert replicas[0].latency_ewma == pytest.approx(0.010)
    assert replicas[0].latency_samples == 1


def test_ewma_folds_with_the_configured_alpha():
    lb, replicas = _balancer(Environment())
    lb.on_success(replicas[0], latency=0.010)
    lb.on_success(replicas[0], latency=0.020)
    assert replicas[0].latency_ewma == pytest.approx(
        0.2 * 0.020 + 0.8 * 0.010
    )


def test_success_without_latency_never_touches_the_ewma():
    lb, replicas = _balancer(Environment())
    lb.on_success(replicas[0])
    assert replicas[0].latency_ewma is None
    assert replicas[0].latency_samples == 0


def test_slow_outlier_is_ejected_without_a_single_failure():
    env = Environment()
    lb, replicas = _balancer(env)
    # Two healthy peers at ~1ms, one gray replica at 10x.
    _feed(lb, replicas[1], 0.001, 5)
    _feed(lb, replicas[2], 0.001, 5)
    _feed(lb, replicas[0], 0.010, 5)
    assert lb.latency_ejections == 1
    assert replicas[0].latency_ejected
    assert replicas[0].ejected_until == pytest.approx(env.now + 1.0)
    assert replicas[0].consecutive_failures == 0
    # Rotation now skips the gray replica.
    picks = {lb.pick().index for _ in range(6)}
    assert picks == {1, 2}


def test_detection_needs_min_samples_on_replica_and_a_peer():
    lb, replicas = _balancer(Environment())
    # Peers have too few samples: no baseline, no ejection.
    _feed(lb, replicas[1], 0.001, 2)
    _feed(lb, replicas[0], 0.010, 10)
    assert lb.latency_ejections == 0
    # Once a peer crosses min_samples the next gray sample fires.
    _feed(lb, replicas[1], 0.001, 2)
    _feed(lb, replicas[0], 0.010, 1)
    assert lb.latency_ejections == 1


def test_successes_do_not_restore_a_latency_ejected_replica():
    env = Environment()
    lb, replicas = _balancer(env)
    _feed(lb, replicas[1], 0.001, 5)
    _feed(lb, replicas[2], 0.001, 5)
    _feed(lb, replicas[0], 0.010, 5)
    assert replicas[0].latency_ejected
    until = replicas[0].ejected_until
    # A straggler success mid-sit-out (still slow) must not reset the
    # clock the way failure-ejection restores do.
    lb.on_success(replicas[0], latency=0.010)
    assert replicas[0].ejected_until is not None
    assert replicas[0].ejected_until >= until


def test_recovered_replica_rejoins_after_the_sitout():
    env = Environment()
    lb, replicas = _balancer(env)
    _feed(lb, replicas[1], 0.001, 5)
    _feed(lb, replicas[2], 0.001, 5)
    _feed(lb, replicas[0], 0.010, 5)
    assert replicas[0].latency_ejected
    # Each time the sit-out lapses the replica re-enters rotation, folds
    # one fast sample into its EWMA, and is re-ejected (with backoff) if
    # it still reads as an outlier — until the EWMA has genuinely
    # recovered and a success restores full health.
    re_ejections = 0
    for _ in range(20):
        env.timeout(8.0)  # outlasts even the max sit-out
        env.run()
        lb.on_success(replicas[0], latency=0.001)
        if replicas[0].ejected_until is None:
            break
        re_ejections += 1
    assert re_ejections >= 1
    assert not replicas[0].latency_ejected
    assert replicas[0].ejected_until is None
    assert {lb.pick().index for _ in range(6)} == {0, 1, 2}


def test_never_ejects_the_last_standing_replica():
    env = Environment()
    lb, replicas = _balancer(env, n=2)
    _feed(lb, replicas[1], 0.001, 5)
    _feed(lb, replicas[0], 0.010, 5)
    assert lb.latency_ejections == 1
    # Replica 1 then goes gray too while 0 sits out: it must stay.
    _feed(lb, replicas[1], 0.050, 5)
    assert lb.latency_ejections == 1
    assert not replicas[1].latency_ejected


def test_feature_off_keeps_the_historical_unconditional_restore():
    env = Environment()
    lb, replicas = _balancer(env, latency_factor=0.0)
    _feed(lb, replicas[1], 0.001, 5)
    _feed(lb, replicas[2], 0.001, 5)
    _feed(lb, replicas[0], 0.010, 10)
    assert lb.latency_ejections == 0
    assert replicas[0].latency_ewma is None
    assert "lb_latency_ejections" not in lb.counters()


def test_counters_expose_latency_ejections_only_when_configured():
    env = Environment()
    lb, replicas = _balancer(env)
    assert lb.counters()["lb_latency_ejections"] == 0.0
    _feed(lb, replicas[1], 0.001, 5)
    _feed(lb, replicas[2], 0.001, 5)
    _feed(lb, replicas[0], 0.010, 5)
    assert lb.counters()["lb_latency_ejections"] == 1.0


@pytest.mark.parametrize("kwargs", [
    {"latency_factor": -1.0},
    {"latency_alpha": 0.0},
    {"latency_alpha": 1.5},
    {"latency_min_samples": 0},
])
def test_config_rejects_bad_latency_knobs(kwargs):
    from repro.errors import ExperimentError

    with pytest.raises(ExperimentError):
        ReplicaConfig(replicas=2, **kwargs).validate()
