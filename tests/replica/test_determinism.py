"""Replicated runs are deterministic, crash-restart and hedging included."""

import dataclasses

import pytest

from repro.faults import CrashWindow, FaultPlan
from repro.ntier.topology import NTierConfig, run_ntier
from repro.replica import REPLICA_ENV, ReplicaConfig
from repro.resilience import (
    BreakerConfig,
    HedgeConfig,
    ResiliencePolicy,
    RetryBudgetConfig,
)
from repro.workload.client import RetryPolicy

pytestmark = pytest.mark.failover


def _config(seed=5):
    return NTierConfig(
        tomcat_variant="async",
        users=20,
        think_mean=0.5,
        duration=1.5,
        warmup=0.4,
        timeline_bucket=0.25,
        seed=seed,
        retry=RetryPolicy(timeout=0.4, max_retries=2, backoff_base=0.02),
        resilience=ResiliencePolicy(
            retry_budget=RetryBudgetConfig(ratio=0.2),
            breaker=BreakerConfig(open_duration=0.2),
            hedge=HedgeConfig(quantile=0.9, min_delay=0.005,
                              initial_delay=0.02, min_samples=10),
        ),
        fault_plan=FaultPlan(
            crash_windows=(CrashWindow(start=0.6, end=0.9, warmup=0.1),)
        ),
        replica=ReplicaConfig(
            replicas=3, policy="least_outstanding",
            ejection_threshold=3, ejection_duration=0.1,
        ),
    )


def _fingerprint(result):
    return (
        dataclasses.asdict(result.report),
        sorted(result.server_stats.items()),
        sorted(result.client_stats.items()),
        sorted(result.resilience.items()),
        sorted(result.replica_stats.items()),
        result.kernel_events,
    )


def test_identical_seeds_are_bit_identical(monkeypatch):
    monkeypatch.setenv(REPLICA_ENV, "1")
    first = run_ntier(_config())
    second = run_ntier(_config())
    assert _fingerprint(first) == _fingerprint(second)
    assert first.replica_stats["replica_crashes"] == 1.0


def test_different_seeds_diverge(monkeypatch):
    monkeypatch.setenv(REPLICA_ENV, "1")
    assert _fingerprint(run_ntier(_config(seed=5))) != _fingerprint(
        run_ntier(_config(seed=6))
    )
