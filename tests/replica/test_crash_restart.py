"""Replica crash/restart semantics: connection resets and cold state."""

import pytest

from repro.replica import Replica

pytestmark = pytest.mark.failover


class _Conn:
    def __init__(self):
        self.closed = False
        self.closes = 0

    def close(self):
        self.closed = True
        self.closes += 1


class _Breaker:
    def __init__(self):
        self.resets = 0

    def reset(self):
        self.resets += 1


class _Pool:
    def __init__(self, connections=(), breaker=None):
        self.connections = list(connections)
        self.breaker = breaker
        self.evictions = 0

    def evict_closed_idle(self):
        self.evictions += 1
        return 0


class _Cache:
    def __init__(self):
        self.clears = 0

    def clear(self):
        self.clears += 1


class _Server:
    def __init__(self, connections=()):
        self.down = False
        self.connections = list(connections)


def _replica():
    upstream = [_Conn(), _Conn()]
    downstream = [_Conn()]
    server = _Server(upstream)
    breaker = _Breaker()
    pool = _Pool()
    db_pool = _Pool(downstream, breaker=breaker)
    cache = _Cache()
    replica = Replica(0, server, cpu=None, pool=pool, db_pool=db_pool, cache=cache)
    return replica, upstream, downstream


def test_crash_kills_the_instance_and_resets_every_connection():
    replica, upstream, downstream = _replica()
    replica.crash()
    assert replica.server.down
    assert replica.crashes == 1
    assert all(c.closed for c in upstream)
    assert all(c.closed for c in downstream)


def test_crash_skips_already_closed_connections():
    replica, upstream, _ = _replica()
    upstream[0].close()
    replica.crash()
    assert upstream[0].closes == 1  # not double-closed
    assert upstream[1].closes == 1


def test_restart_comes_back_cold():
    replica, _, _ = _replica()
    replica.crash()
    replica.restart()
    assert not replica.server.down
    assert replica.cache.clears == 1           # cache starts empty
    assert replica.db_pool.breaker.resets == 1  # own breaker back to CLOSED
    # Reconnection storm: both pools eagerly replace their dead members.
    assert replica.pool.evictions == 1
    assert replica.db_pool.evictions == 1


def test_restart_tolerates_missing_cache_and_db_pool():
    replica = Replica(0, _Server(), cpu=None, pool=_Pool())
    replica.crash()
    replica.restart()
    assert not replica.server.down
    assert replica.pool.evictions == 1


def test_crash_counter_accumulates_across_windows():
    replica, _, _ = _replica()
    for _ in range(3):
        replica.crash()
        replica.restart()
    assert replica.crashes == 3
