"""The replica layer's zero-impact contract, proven three ways.

A run with (a) no replica config, (b) ``ReplicaConfig(replicas=1)``,
(c) ``ReplicaConfig(enabled=False)`` and (d) a fully enabled config
under ``REPRO_REPLICA=0`` must all be *bit-identical*: same report
floats, same counters, same kernel event count — the replicated build
path never executes, forks no RNG streams, creates no objects.
"""

import dataclasses

import pytest

from repro.replica import REPLICA_ENV, ReplicaConfig
from repro.ntier.topology import NTierConfig, run_ntier

pytestmark = pytest.mark.failover

_BASE = dict(
    tomcat_variant="async",
    users=15,
    think_mean=0.5,
    duration=1.0,
    warmup=0.4,
    timeline_bucket=0.25,
    seed=9,
)

#: A config that visibly changes behaviour when the layer is live.
_REPLICA = ReplicaConfig(replicas=3, policy="least_outstanding", probe_interval=0.2)


def _fingerprint(result):
    return (
        dataclasses.asdict(result.report),
        sorted(result.server_stats.items()),
        sorted(result.client_stats.items()),
        sorted(result.resilience.items()),
        sorted(result.replica_stats.items()),
        result.kernel_events,
    )


@pytest.fixture
def baseline(monkeypatch):
    monkeypatch.setenv(REPLICA_ENV, "1")
    return _fingerprint(run_ntier(NTierConfig(**_BASE)))


def test_single_replica_is_bit_identical(monkeypatch, baseline):
    monkeypatch.setenv(REPLICA_ENV, "1")
    result = run_ntier(NTierConfig(replica=ReplicaConfig(replicas=1), **_BASE))
    assert _fingerprint(result) == baseline
    assert result.replica_stats == {}


def test_disabled_config_is_bit_identical(monkeypatch, baseline):
    monkeypatch.setenv(REPLICA_ENV, "1")
    result = run_ntier(
        NTierConfig(replica=dataclasses.replace(_REPLICA, enabled=False), **_BASE)
    )
    assert _fingerprint(result) == baseline
    assert result.replica_stats == {}


def test_kill_switch_is_bit_identical(monkeypatch, baseline):
    monkeypatch.setenv(REPLICA_ENV, "0")
    result = run_ntier(NTierConfig(replica=_REPLICA, **_BASE))
    assert _fingerprint(result) == baseline
    assert result.replica_stats == {}


def test_enabled_layer_actually_engages(monkeypatch, baseline):
    """Sanity for the contract above: the same replica config *with* the
    layer live must diverge from the baseline and report counters."""
    monkeypatch.setenv(REPLICA_ENV, "1")
    result = run_ntier(NTierConfig(replica=_REPLICA, **_BASE))
    assert result.replica_stats
    assert result.replica_stats["lb_picks"] > 0
    assert result.replica_stats["probe_successes"] > 0
    assert _fingerprint(result) != baseline
