"""ReplicaConfig validation, the ``active`` property and the kill switch."""

import pytest

from repro.errors import ExperimentError
from repro.replica import REPLICA_ENV, ReplicaConfig, replica_enabled

pytestmark = pytest.mark.failover


@pytest.mark.parametrize(
    "kwargs",
    [
        {"replicas": 0},
        {"replicas": -1},
        {"policy": "random"},
        {"ejection_threshold": -1},
        {"ejection_duration": 0.0},
        {"ejection_backoff": 0.5},
        {"ejection_duration": 2.0, "ejection_max_duration": 1.0},
        {"probe_interval": -0.1},
    ],
)
def test_validate_rejects_nonsense(kwargs):
    with pytest.raises(ExperimentError):
        ReplicaConfig(**kwargs).validate()


def test_validate_returns_self_for_chaining():
    config = ReplicaConfig(replicas=3, policy="least_outstanding")
    assert config.validate() is config


def test_zero_threshold_is_legal_and_disables_ejection():
    assert ReplicaConfig(ejection_threshold=0).validate().ejection_threshold == 0


def test_active_requires_enabled_and_more_than_one_replica():
    assert not ReplicaConfig().active                      # replicas=1
    assert not ReplicaConfig(enabled=False, replicas=3).active
    assert ReplicaConfig(replicas=2).active


def test_config_is_hashable_and_value_comparable():
    assert ReplicaConfig(replicas=3) == ReplicaConfig(replicas=3)
    assert hash(ReplicaConfig()) == hash(ReplicaConfig())
    assert ReplicaConfig() != ReplicaConfig(policy="least_outstanding")


@pytest.mark.parametrize("value", ["0", "off", "no", "false", " FALSE "])
def test_kill_switch_values(monkeypatch, value):
    monkeypatch.setenv(REPLICA_ENV, value)
    assert not replica_enabled()


@pytest.mark.parametrize("value", [None, "1", "on", "yes", "true", ""])
def test_enabled_values(monkeypatch, value):
    if value is None:
        monkeypatch.delenv(REPLICA_ENV, raising=False)
    else:
        monkeypatch.setenv(REPLICA_ENV, value)
    assert replica_enabled()
