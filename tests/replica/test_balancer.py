"""LoadBalancer routing, passive outlier ejection and the active prober."""

import pytest

from repro.errors import SimulationError
from repro.replica import LoadBalancer, Replica, ReplicaConfig, ReplicaGroup
from repro.sim.core import Environment

pytestmark = pytest.mark.failover


class _Server:
    """The slice of the server surface the balancer/prober touches."""

    def __init__(self):
        self.down = False
        self.connections = []


def _replicas(n):
    return [Replica(i, _Server(), None, None) for i in range(n)]


def _balancer(env, n=3, **overrides):
    defaults = dict(
        replicas=n, ejection_threshold=3, ejection_duration=1.0,
        ejection_backoff=2.0, ejection_max_duration=8.0,
    )
    defaults.update(overrides)
    replicas = _replicas(n)
    return LoadBalancer(env, ReplicaConfig(**defaults), replicas), replicas


def advance(env, seconds):
    env.timeout(seconds)
    env.run()


# ----------------------------------------------------------------------
# Selection policies
# ----------------------------------------------------------------------

def test_round_robin_cycles_in_index_order():
    lb, _ = _balancer(Environment())
    picks = [lb.pick().index for _ in range(7)]
    assert picks == [0, 1, 2, 0, 1, 2, 0]
    assert lb.picks == 7


def test_round_robin_skips_the_excluded_replica():
    lb, replicas = _balancer(Environment())
    picks = [lb.pick(exclude=replicas[1]).index for _ in range(4)]
    assert picks == [0, 2, 0, 2]


def test_exclude_of_the_sole_candidate_yields_none():
    lb, replicas = _balancer(Environment(), n=1)
    assert lb.pick(exclude=replicas[0]) is None


def test_least_outstanding_prefers_idle_replicas_with_index_ties():
    lb, replicas = _balancer(Environment(), policy="least_outstanding")
    replicas[0].outstanding = 2
    replicas[1].outstanding = 1
    replicas[2].outstanding = 1
    assert lb.pick().index == 1  # tie between 1 and 2 -> lowest index
    replicas[1].outstanding = 5
    assert lb.pick().index == 2


# ----------------------------------------------------------------------
# Passive outlier ejection
# ----------------------------------------------------------------------

def test_threshold_consecutive_failures_eject():
    env = Environment()
    lb, replicas = _balancer(env)
    victim = replicas[1]
    for _ in range(2):
        lb.on_failure(victim)
    assert victim.ejected_until is None  # one short of the threshold
    lb.on_failure(victim)
    assert victim.ejected_until == env.now + 1.0
    assert lb.ejections == 1
    picks = {lb.pick().index for _ in range(6)}
    assert picks == {0, 2}


def test_any_success_clears_the_failure_streak():
    env = Environment()
    lb, replicas = _balancer(env)
    victim = replicas[0]
    lb.on_failure(victim)
    lb.on_failure(victim)
    lb.on_success(victim)
    lb.on_failure(victim)
    lb.on_failure(victim)
    lb.on_failure(victim)  # streak restarted at the success
    assert lb.ejections == 1


def test_probation_success_restores_full_health():
    env = Environment()
    lb, replicas = _balancer(env)
    victim = replicas[2]
    for _ in range(3):
        lb.on_failure(victim)
    advance(env, 1.5)  # sit-out lapsed: probation
    assert victim.index in {lb.pick().index for _ in range(6)}
    lb.on_success(victim)
    assert victim.ejected_until is None
    assert victim.sitout is None
    assert victim.consecutive_failures == 0


def test_probation_failure_reejects_immediately_with_backoff():
    env = Environment()
    lb, replicas = _balancer(env)
    victim = replicas[0]
    for _ in range(3):
        lb.on_failure(victim)
    assert victim.sitout == 2.0  # next sit-out, backed off from 1.0
    advance(env, 1.5)
    lb.on_failure(victim)  # single probation failure, no new streak needed
    assert victim.ejected_until == env.now + 2.0
    assert victim.sitout == 4.0
    assert lb.ejections == 2


def test_backoff_is_capped_at_the_max_duration():
    env = Environment()
    lb, replicas = _balancer(env, ejection_backoff=4.0, ejection_max_duration=3.0)
    victim = replicas[0]
    for _ in range(3):
        lb.on_failure(victim)
    assert victim.sitout == 3.0  # min(1.0 * 4, 3.0)
    advance(env, 1.5)
    lb.on_failure(victim)
    assert victim.ejected_until == env.now + 3.0
    assert victim.sitout == 3.0  # stays pinned at the cap


def test_failures_while_sitting_out_do_not_stack_ejections():
    env = Environment()
    lb, replicas = _balancer(env)
    victim = replicas[1]
    for _ in range(3):
        lb.on_failure(victim)
    until = victim.ejected_until
    for _ in range(5):  # panic-mode picks can still route and fail here
        lb.on_failure(victim)
    assert victim.ejected_until == until
    assert lb.ejections == 1


def test_panic_mode_routes_over_ejected_replicas():
    env = Environment()
    lb, replicas = _balancer(env, n=2)
    for replica in replicas:
        for _ in range(3):
            lb.on_failure(replica)
    assert lb.pick() is not None  # a dead pick beats no pick
    assert lb.panic_picks == 1


def test_zero_threshold_disables_ejection():
    env = Environment()
    lb, replicas = _balancer(env, ejection_threshold=0)
    for _ in range(50):
        lb.on_failure(replicas[0])
    assert replicas[0].ejected_until is None
    assert lb.ejections == 0


def test_balancer_requires_at_least_one_replica():
    with pytest.raises(SimulationError):
        LoadBalancer(Environment(), ReplicaConfig(), [])


def test_counters_are_namespaced():
    lb, _ = _balancer(Environment())
    lb.pick()
    assert lb.counters() == {
        "lb_picks": 1.0,
        "lb_panic_picks": 0.0,
        "lb_ejections": 0.0,
    }


# ----------------------------------------------------------------------
# Active health probes
# ----------------------------------------------------------------------

def _group(env, **overrides):
    defaults = dict(
        replicas=2, ejection_threshold=2, ejection_duration=10.0,
        ejection_max_duration=20.0, probe_interval=0.25,
    )
    defaults.update(overrides)
    replicas = _replicas(defaults["replicas"])
    group = ReplicaGroup(env, ReplicaConfig(**defaults), replicas)
    group.start_probes()
    return group, replicas


def test_probes_eject_a_down_replica_without_live_requests():
    env = Environment()
    group, replicas = _group(env)
    replicas[1].server.down = True
    env.run(until=0.6)  # two probe rounds at 0.25 and 0.5
    assert group.probe_failures == 2
    assert group.probe_successes == 2
    assert group.balancer.ejections == 1
    assert group.balancer._in_ejection(replicas[1])
    assert group.balancer.picks == 0  # detection cost zero live requests


def test_probes_restore_a_recovered_replica_before_the_sitout_lapses():
    env = Environment()
    group, replicas = _group(env)
    replicas[1].server.down = True
    env.run(until=0.6)
    assert group.balancer._in_ejection(replicas[1])
    replicas[1].server.down = False
    env.run(until=0.8)  # one more probe round; sit-out (10 s) is far away
    assert replicas[1].ejected_until is None
    assert replicas[1].consecutive_failures == 0


def test_disabled_probe_interval_spawns_no_prober():
    env = Environment()
    group, replicas = _group(env, probe_interval=0.0)
    replicas[0].server.down = True
    env.run(until=2.0)
    assert group.probe_failures == 0
    assert group.probe_successes == 0


def test_group_counters_include_probe_and_crash_totals():
    env = Environment()
    group, replicas = _group(env)
    env.run(until=0.3)
    counts = group.counters()
    assert counts["probe_successes"] == 2.0
    assert counts["probe_failures"] == 0.0
    assert counts["replica_crashes"] == 0.0
    assert "lb_picks" in counts
