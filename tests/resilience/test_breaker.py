"""The circuit breaker's closed → open → half-open state machine."""

from repro.resilience import BreakerConfig, CircuitBreaker
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN

CONFIG = BreakerConfig(
    window=10, min_samples=4, failure_threshold=0.5,
    open_duration=1.0, half_open_probes=2,
)


def advance(env, seconds):
    """Move the simulation clock forward by ``seconds``."""
    env.timeout(seconds)
    env.run()


def test_starts_closed_and_allows(env):
    breaker = CircuitBreaker(env, CONFIG)
    assert breaker.state == CLOSED
    assert breaker.allow()
    assert breaker.fast_failures == 0


def test_stays_closed_below_min_samples(env):
    breaker = CircuitBreaker(env, CONFIG)
    for _ in range(CONFIG.min_samples - 1):
        breaker.record_failure()
    assert breaker.state == CLOSED


def test_trips_at_failure_threshold(env):
    breaker = CircuitBreaker(env, CONFIG)
    for _ in range(CONFIG.min_samples):
        breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.opens == 1
    assert not breaker.allow()
    assert breaker.fast_failures == 1


def test_successes_dilute_failures_below_threshold(env):
    breaker = CircuitBreaker(env, CONFIG)
    for _ in range(6):
        breaker.record_success()
    for _ in range(4):
        breaker.record_failure()
    # 4 failures / 10 outcomes = 40% < 50% threshold.
    assert breaker.state == CLOSED


def _trip(env, breaker):
    for _ in range(CONFIG.min_samples):
        breaker.record_failure()
    assert breaker.state == OPEN


def test_half_open_admits_bounded_probes(env):
    breaker = CircuitBreaker(env, CONFIG)
    _trip(env, breaker)
    advance(env, CONFIG.open_duration)
    assert breaker.state == HALF_OPEN
    assert breaker.allow()
    assert breaker.allow()
    assert not breaker.allow()  # probe quota (2) exhausted
    assert breaker.fast_failures == 1


def test_probe_successes_close_the_breaker(env):
    breaker = CircuitBreaker(env, CONFIG)
    _trip(env, breaker)
    advance(env, CONFIG.open_duration)
    for _ in range(CONFIG.half_open_probes):
        assert breaker.allow()
        breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.closes == 1
    assert breaker.allow()


def test_failed_probe_reopens_immediately(env):
    breaker = CircuitBreaker(env, CONFIG)
    _trip(env, breaker)
    advance(env, CONFIG.open_duration)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.opens == 2
    assert not breaker.allow()


def test_failures_while_open_are_ignored(env):
    breaker = CircuitBreaker(env, CONFIG)
    _trip(env, breaker)
    breaker.record_failure()  # the in-flight stragglers keep failing
    assert breaker.opens == 1  # no double trip


def test_counters_are_namespaced(env):
    breaker = CircuitBreaker(env, CONFIG, name="apache-tomcat")
    _trip(env, breaker)
    assert not breaker.allow()
    counters = breaker.counters()
    assert counters["apache-tomcat_opens"] == 1.0
    assert counters["apache-tomcat_fast_failures"] == 1.0
    assert counters["apache-tomcat_closes"] == 0.0
