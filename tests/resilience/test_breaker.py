"""The circuit breaker's closed → open → half-open state machine."""

from repro.resilience import (
    BreakerConfig,
    CircuitBreaker,
    RetryBudget,
    RetryBudgetConfig,
)
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN

CONFIG = BreakerConfig(
    window=10, min_samples=4, failure_threshold=0.5,
    open_duration=1.0, half_open_probes=2,
)


def advance(env, seconds):
    """Move the simulation clock forward by ``seconds``."""
    env.timeout(seconds)
    env.run()


def test_starts_closed_and_allows(env):
    breaker = CircuitBreaker(env, CONFIG)
    assert breaker.state == CLOSED
    assert breaker.allow()
    assert breaker.fast_failures == 0


def test_stays_closed_below_min_samples(env):
    breaker = CircuitBreaker(env, CONFIG)
    for _ in range(CONFIG.min_samples - 1):
        breaker.record_failure()
    assert breaker.state == CLOSED


def test_trips_at_failure_threshold(env):
    breaker = CircuitBreaker(env, CONFIG)
    for _ in range(CONFIG.min_samples):
        breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.opens == 1
    assert not breaker.allow()
    assert breaker.fast_failures == 1


def test_successes_dilute_failures_below_threshold(env):
    breaker = CircuitBreaker(env, CONFIG)
    for _ in range(6):
        breaker.record_success()
    for _ in range(4):
        breaker.record_failure()
    # 4 failures / 10 outcomes = 40% < 50% threshold.
    assert breaker.state == CLOSED


def _trip(env, breaker):
    for _ in range(CONFIG.min_samples):
        breaker.record_failure()
    assert breaker.state == OPEN


def test_half_open_admits_bounded_probes(env):
    breaker = CircuitBreaker(env, CONFIG)
    _trip(env, breaker)
    advance(env, CONFIG.open_duration)
    assert breaker.state == HALF_OPEN
    assert breaker.allow()
    assert breaker.allow()
    assert not breaker.allow()  # probe quota (2) exhausted
    assert breaker.fast_failures == 1


def test_probe_successes_close_the_breaker(env):
    breaker = CircuitBreaker(env, CONFIG)
    _trip(env, breaker)
    advance(env, CONFIG.open_duration)
    for _ in range(CONFIG.half_open_probes):
        assert breaker.allow()
        breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.closes == 1
    assert breaker.allow()


def test_failed_probe_reopens_immediately(env):
    breaker = CircuitBreaker(env, CONFIG)
    _trip(env, breaker)
    advance(env, CONFIG.open_duration)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.opens == 2
    assert not breaker.allow()


def test_failures_while_open_are_ignored(env):
    breaker = CircuitBreaker(env, CONFIG)
    _trip(env, breaker)
    breaker.record_failure()  # the in-flight stragglers keep failing
    assert breaker.opens == 1  # no double trip


def test_down_for_entire_probe_window_reopens_each_cycle(env):
    """Upstream dead across every probe window: each half-open cycle
    admits its probes, the first failure re-opens, and ``opens`` counts
    exactly one transition per cycle."""
    breaker = CircuitBreaker(env, CONFIG)
    _trip(env, breaker)
    for cycle in range(1, 4):
        advance(env, CONFIG.open_duration)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe goes out...
        breaker.record_failure()  # ...and dies against the down upstream
        assert breaker.state == OPEN
        assert breaker.opens == 1 + cycle
        # Until the next window expires everything fast-fails.
        assert not breaker.allow()


def test_straggler_probe_outcomes_are_counted_exactly_once(env):
    """Two concurrent probes: the first failure re-opens; the second
    probe's outcome (failure *or* late success) must not double-trip,
    close, or pollute the next cycle's window."""
    breaker = CircuitBreaker(env, CONFIG)
    _trip(env, breaker)
    advance(env, CONFIG.open_duration)
    assert breaker.allow() and breaker.allow()  # both probes in flight
    breaker.record_failure()
    assert breaker.state == OPEN and breaker.opens == 2
    breaker.record_failure()  # straggler probe fails too
    assert breaker.opens == 2  # not a second transition
    breaker.record_success()  # or even comes back late and "succeeds"
    assert breaker.state == OPEN and breaker.closes == 0
    # The next cycle starts clean: a full probe quota of successes is
    # still required to close (no leftover probe bookkeeping).
    advance(env, CONFIG.open_duration)
    for _ in range(CONFIG.half_open_probes):
        assert breaker.allow()
        breaker.record_success()
    assert breaker.state == CLOSED and breaker.closes == 1


def test_reopen_cycles_do_not_leak_retry_budget_tokens(env):
    """Clients retrying through a breaker that is re-opening against a
    down upstream spend retry-budget tokens only for retries they
    actually issue — breaker bookkeeping (probe admissions, fast
    failures, re-opens) never touches the bucket."""
    breaker = CircuitBreaker(env, CONFIG)
    budget = RetryBudget(RetryBudgetConfig(ratio=0.5, initial=0.0, cap=10.0))
    _trip(env, breaker)
    retries_issued = 0
    for _ in range(40):  # requests against a permanently-down upstream
        budget.on_request()
        if breaker.allow():
            breaker.record_failure()  # probe or regular call: it dies
        if budget.try_spend():
            retries_issued += 1
            if breaker.allow():
                breaker.record_failure()
        advance(env, CONFIG.open_duration / 4)
    # Exact conservation: deposits in, one whole token per granted
    # retry out — regardless of how many probes the breaker admitted,
    # fast-failed, or re-opened along the way.
    assert budget.granted == retries_issued
    assert budget.tokens == budget.deposited - budget.granted
    assert budget.granted + budget.denied == 40
    assert breaker.opens > 1  # the upstream really was down all along


def test_reset_restores_cold_state_but_keeps_accounting(env):
    """A crash-restart wipes the breaker's memory (state, window, probe
    bookkeeping) without erasing what it did before dying."""
    breaker = CircuitBreaker(env, CONFIG)
    _trip(env, breaker)
    advance(env, CONFIG.open_duration)
    assert breaker.allow()  # leave a probe dangling mid-restart
    breaker.reset()
    assert breaker.state == CLOSED
    assert breaker.opens == 1  # cumulative counters survive
    assert breaker.allow()
    # The window restarts empty: min_samples fresh failures to re-trip.
    for _ in range(CONFIG.min_samples - 1):
        breaker.record_failure()
    assert breaker.state == CLOSED
    breaker.record_failure()
    assert breaker.state == OPEN and breaker.opens == 2


def test_counters_are_namespaced(env):
    breaker = CircuitBreaker(env, CONFIG, name="apache-tomcat")
    _trip(env, breaker)
    assert not breaker.allow()
    counters = breaker.counters()
    assert counters["apache-tomcat_opens"] == 1.0
    assert counters["apache-tomcat_fast_failures"] == 1.0
    assert counters["apache-tomcat_closes"] == 0.0
