"""Zero-impact-when-disabled and jobs-determinism guarantees.

The resilience layer must be provably inert when no knob is set (every
measurement bit-identical to a run that never imported it) and fully
deterministic when enabled (bit-identical across ``--jobs`` fan-outs).
"""

from dataclasses import replace

import pytest

from repro.experiments.micro import MicroConfig, run_micro
from repro.experiments.parallel import SweepExecutor
from repro.faults import FaultPlan, StallWindow
from repro.ntier.topology import NTierConfig
from repro.resilience import (
    AdmissionConfig,
    BreakerConfig,
    ResiliencePolicy,
    RetryBudgetConfig,
)
from repro.workload.client import RetryPolicy

pytestmark = pytest.mark.resilience

_MICRO = MicroConfig(
    server="SingleT-Async",
    concurrency=8,
    response_size=10 * 1024,
    duration=0.6,
    warmup=0.2,
)

_POLICY = ResiliencePolicy(
    deadline=0.5,
    retry_budget=RetryBudgetConfig(ratio=0.1),
    breaker=BreakerConfig(),
    admission=AdmissionConfig(target_latency=0.05, min_limit=4, max_limit=64),
)


def test_disabled_policy_is_bit_identical_to_no_policy():
    plain = run_micro(_MICRO)
    disabled = run_micro(replace(_MICRO, resilience=ResiliencePolicy()))
    assert plain.report == disabled.report
    assert plain.server_stats == disabled.server_stats
    assert plain.client_stats == disabled.client_stats
    assert plain.kernel_events == disabled.kernel_events
    assert disabled.resilience == {}


def test_enabled_policy_populates_resilience_counters():
    result = run_micro(replace(_MICRO, resilience=_POLICY))
    assert result.report.completed > 0
    assert "budget_granted" in result.resilience
    assert "admission_limit" in result.resilience
    assert result.resilience["admission_limit"] >= 4.0


def test_enabled_policy_is_reproducible():
    config = replace(_MICRO, resilience=_POLICY)
    one = run_micro(config)
    two = run_micro(config)
    assert one.report == two.report
    assert one.resilience == two.resilience
    assert one.client_stats == two.client_stats


def _ntier_config(seed: int) -> NTierConfig:
    return NTierConfig(
        tomcat_variant="async",
        users=60,
        think_mean=0.2,
        duration=3.0,
        warmup=1.0,
        fault_plan=FaultPlan(server_stalls=(StallWindow(start=1.5, duration=0.3),)),
        retry=RetryPolicy(timeout=0.2, max_retries=3, backoff_base=0.02),
        resilience=ResiliencePolicy(
            deadline=0.4,
            retry_budget=RetryBudgetConfig(ratio=0.1),
            breaker=BreakerConfig(min_samples=5, open_duration=0.2),
            admission=AdmissionConfig(target_latency=0.1, min_limit=4),
        ),
        timeline_bucket=0.5,
        seed=seed,
    )


def test_resilient_ntier_sweep_identical_for_any_job_count():
    """Full resilience stack on: --jobs 1 and --jobs 4 must agree bit-for-bit
    on every measurement, counter and fault trace."""
    points = {seed: _ntier_config(seed) for seed in (1, 2, 3, 4)}
    serial = SweepExecutor("resil-det", jobs=1, cache_dir=None).map_ntier(points)
    fanned = SweepExecutor("resil-det", jobs=4, cache_dir=None).map_ntier(points)
    assert serial == fanned  # frozen NTierResult: reports, stats, traces
    assert any(r.client_stats["retries"] > 0 for r in serial.values())
    assert any(r.resilience["budget_deposited"] > 0 for r in serial.values())
