"""The AIMD admission limiter, standalone and wired into a server."""

import pytest

from repro.net.messages import Request
from repro.resilience import AdaptiveLimiter, AdmissionConfig
from repro.servers.base import ServerLimits
from repro.servers.threaded import ThreadedServer

CONFIG = AdmissionConfig(
    target_latency=0.05, min_limit=4, max_limit=16,
    increase=1.0, decrease=0.5, cooldown=0.1,
)


def advance(env, seconds):
    """Move the simulation clock forward by ``seconds``."""
    env.timeout(seconds)
    env.run()


def test_fast_completions_grow_the_limit(env):
    limiter = AdaptiveLimiter(env, CONFIG)
    assert limiter.limit == CONFIG.min_limit
    for _ in range(200):
        limiter.on_complete(0.01)
    assert limiter.limit == CONFIG.max_limit  # clamped at the ceiling
    assert limiter.increases > 0


def test_growth_is_sublinear_in_the_limit(env):
    # +increase/limit per completion: roughly one limit-sized batch of
    # fast completions buys +1 of concurrency.
    limiter = AdaptiveLimiter(env, CONFIG)
    for _ in range(CONFIG.min_limit + 1):
        limiter.on_complete(0.01)
    assert limiter.limit == CONFIG.min_limit + 1
    assert limiter.increases == CONFIG.min_limit + 1


def test_latency_breach_shrinks_multiplicatively(env):
    limiter = AdaptiveLimiter(env, AdmissionConfig(
        target_latency=0.05, min_limit=2, max_limit=16, initial=16,
        decrease=0.5, cooldown=0.1,
    ))
    limiter.on_complete(1.0)
    assert limiter.limit == 8
    assert limiter.decreases == 1


def test_cooldown_rate_limits_decreases(env):
    limiter = AdaptiveLimiter(env, AdmissionConfig(
        target_latency=0.05, min_limit=2, max_limit=16, initial=16,
        decrease=0.5, cooldown=0.1,
    ))
    limiter.on_complete(1.0)
    limiter.on_complete(1.0)  # burst of queued latecomers, same instant
    limiter.on_failure()
    assert limiter.limit == 8  # only the first breach bit
    advance(env, 0.2)
    limiter.on_failure()
    assert limiter.limit == 4  # cooldown elapsed: next decrease lands
    assert limiter.decreases == 2


def test_decrease_floors_at_min_limit(env):
    limiter = AdaptiveLimiter(env, AdmissionConfig(
        target_latency=0.05, min_limit=4, max_limit=16, initial=4,
        decrease=0.5, cooldown=0.001,
    ))
    for _ in range(5):
        advance(env, 0.01)
        limiter.on_failure()
    assert limiter.limit == 4


def test_counters_snapshot_keys(env):
    limiter = AdaptiveLimiter(env, CONFIG)
    limiter.on_complete(0.01)
    counters = limiter.counters()
    assert set(counters) == {
        "admission_limit", "admission_increases", "admission_decreases",
    }


# ----------------------------------------------------------------------
# Wiring into BaseServer
# ----------------------------------------------------------------------
def test_server_limits_adaptive_builds_a_limiter(env, cpu):
    server = ThreadedServer(env, cpu, limits=ServerLimits(adaptive=CONFIG))
    assert server.limiter is not None
    assert server.limiter.limit == CONFIG.min_limit
    server.limits = None
    assert server.limiter is None


def test_static_limits_build_no_limiter(env, cpu):
    server = ThreadedServer(env, cpu, limits=ServerLimits(max_inflight=8))
    assert server.limiter is None


def test_server_sheds_above_the_adaptive_limit(env, cpu, make_connection):
    from tests.servers.test_shedding import SlowApplication

    server = ThreadedServer(
        env, cpu, app=SlowApplication(0.1),
        limits=ServerLimits(adaptive=AdmissionConfig(
            target_latency=0.01, min_limit=1, max_limit=1,
        )),
    )
    conns = []
    for _ in range(3):
        conn = make_connection()
        server.attach(conn)
        conns.append(conn)
        conn.send_request(Request(env, "x", 1000))
    env.run(until=0.05)
    assert server.stats.requests_rejected == 2  # only 1 slot discovered


def test_expired_deadline_is_rejected_cheaply(env, cpu, make_connection):
    from tests.servers.test_shedding import SlowApplication

    # Full service would take 10s; the expired request must come back
    # almost immediately, proving the application never ran.
    server = ThreadedServer(env, cpu, app=SlowApplication(10.0))
    conn = make_connection()
    server.attach(conn)
    request = Request(env, "x", 100_000, deadline=1e-9)
    conn.send_request(request)
    env.run(until=0.05)
    assert server.stats.requests_expired == 1
    assert request.completed.triggered
    assert request.metadata.get("rejected")
    assert request.metadata.get("expired")


def test_deadline_in_the_future_is_served_normally(env, cpu, make_connection):
    server = ThreadedServer(env, cpu)
    conn = make_connection()
    server.attach(conn)
    request = Request(env, "x", 1000, deadline=10.0)
    conn.send_request(request)
    env.run(until=0.05)
    assert request.completed.triggered
    assert not request.metadata.get("rejected")
    assert server.stats.requests_expired == 0
