"""HedgePolicy: the learned hedge delay and budget-bounded issuance."""

from repro.resilience import (
    HedgeConfig,
    HedgePolicy,
    RetryBudget,
    RetryBudgetConfig,
)


def test_initial_delay_until_enough_samples():
    policy = HedgePolicy(HedgeConfig(min_samples=5, initial_delay=0.05, min_delay=0.01))
    assert policy.delay() == 0.05
    for _ in range(4):
        policy.observe(0.2)
    assert policy.delay() == 0.05  # still one sample short
    policy.observe(0.2)
    assert policy.delay() == 0.2  # P2 is exact for the first five samples


def test_min_delay_floors_a_collapsed_quantile():
    policy = HedgePolicy(HedgeConfig(min_samples=5, initial_delay=0.05, min_delay=0.01))
    for _ in range(5):
        policy.observe(0.0001)
    assert policy.delay() == 0.01


def test_initial_delay_is_floored_too():
    policy = HedgePolicy(HedgeConfig(min_samples=5, initial_delay=0.0, min_delay=0.02))
    assert policy.delay() == 0.02


def test_budgetless_policy_grants_every_hedge():
    policy = HedgePolicy(HedgeConfig())
    for _ in range(10):
        assert policy.try_hedge()
    assert policy.hedges_issued == 10
    assert policy.hedges_denied == 0


def test_budget_bounds_hedges_exactly_like_retries():
    budget = RetryBudget(RetryBudgetConfig(ratio=0.5, initial=0.0, cap=10.0))
    policy = HedgePolicy(HedgeConfig(), budget=budget)

    # A dry budget denies the backup outright.
    assert not policy.try_hedge()
    assert policy.hedges_denied == 1
    assert policy.hedges_issued == 0

    # Two initial attempts deposit one whole token; the next hedge spends it.
    budget.on_request()
    budget.on_request()
    assert policy.try_hedge()
    assert policy.hedges_issued == 1
    # The token came out of the *shared* bucket, so the budget's own
    # accounting sees the hedge as a granted withdrawal.
    assert budget.granted == 1
    # Bucket is dry again.
    assert not policy.try_hedge()
    assert policy.hedges_denied == 2


def test_counters_snapshot():
    budget = RetryBudget(RetryBudgetConfig(ratio=1.0, initial=1.0, cap=10.0))
    policy = HedgePolicy(HedgeConfig(), budget=budget)
    assert policy.try_hedge()
    policy.hedges_won += 1
    policy.hedges_cancelled += 1
    assert policy.counters() == {
        "hedges_issued": 1.0,
        "hedges_won": 1.0,
        "hedges_cancelled": 1.0,
        "hedges_denied": 0.0,
    }
