"""Validation and semantics of the resilience config dataclasses."""

import pytest

from repro.errors import WorkloadError
from repro.resilience import (
    AdmissionConfig,
    BreakerConfig,
    ResiliencePolicy,
    RetryBudgetConfig,
)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"ratio": -0.1},
        {"ratio": 1.5},
        {"cap": 0.0},
        {"initial": -1.0},
        {"initial": 30.0, "cap": 20.0},
    ],
)
def test_budget_config_validation(kwargs):
    with pytest.raises(WorkloadError):
        RetryBudgetConfig(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"window": 0},
        {"min_samples": 0},
        {"min_samples": 30, "window": 20},
        {"failure_threshold": 0.0},
        {"failure_threshold": 1.5},
        {"open_duration": 0.0},
        {"half_open_probes": 0},
    ],
)
def test_breaker_config_validation(kwargs):
    with pytest.raises(WorkloadError):
        BreakerConfig(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"target_latency": 0.0},
        {"min_limit": 0},
        {"max_limit": 2, "min_limit": 4},
        {"initial": 2, "min_limit": 4},
        {"initial": 2048, "max_limit": 1024},
        {"increase": 0.0},
        {"decrease": 0.0},
        {"decrease": 1.0},
        {"cooldown": 0.0},
    ],
)
def test_admission_config_validation(kwargs):
    with pytest.raises(WorkloadError):
        AdmissionConfig(**kwargs)


def test_admission_config_effective_defaults():
    config = AdmissionConfig(target_latency=0.2, min_limit=8)
    assert config.effective_cooldown == pytest.approx(0.2)
    assert config.effective_initial == 8
    tuned = AdmissionConfig(min_limit=4, initial=16, cooldown=1.5)
    assert tuned.effective_cooldown == pytest.approx(1.5)
    assert tuned.effective_initial == 16


def test_policy_deadline_validation():
    with pytest.raises(WorkloadError):
        ResiliencePolicy(deadline=0.0)
    with pytest.raises(WorkloadError):
        ResiliencePolicy(deadline=-1.0)


def test_policy_enabled_property():
    assert not ResiliencePolicy().enabled
    assert ResiliencePolicy(deadline=1.0).enabled
    assert ResiliencePolicy(retry_budget=RetryBudgetConfig()).enabled
    assert ResiliencePolicy(breaker=BreakerConfig()).enabled
    assert ResiliencePolicy(admission=AdmissionConfig()).enabled
