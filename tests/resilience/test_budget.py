"""The population-wide retry budget (token bucket)."""

from repro.resilience import RetryBudget, RetryBudgetConfig


def test_initial_tokens_allow_early_retries():
    budget = RetryBudget(RetryBudgetConfig(ratio=0.1, cap=20.0, initial=2.0))
    assert budget.try_spend()
    assert budget.try_spend()
    assert not budget.try_spend()  # bucket dry, nothing deposited yet
    assert budget.granted == 2
    assert budget.denied == 1


def test_deposits_are_capped():
    budget = RetryBudget(RetryBudgetConfig(ratio=0.5, cap=3.0, initial=3.0))
    for _ in range(100):
        budget.on_request()
    assert budget.tokens == 3.0  # never exceeds the cap
    assert budget.deposited == 50.0  # pre-cap accounting still exact


def test_long_run_retry_volume_bounded_by_ratio():
    config = RetryBudgetConfig(ratio=0.1, cap=20.0, initial=10.0)
    budget = RetryBudget(config)
    requests = 1000
    for _ in range(requests):
        budget.on_request()
        budget.try_spend()  # a greedy client retries every single request
    assert budget.granted <= config.ratio * requests + config.initial
    assert budget.denied == requests - budget.granted


def test_zero_ratio_grants_only_the_initial_tokens():
    budget = RetryBudget(RetryBudgetConfig(ratio=0.0, cap=5.0, initial=2.0))
    for _ in range(10):
        budget.on_request()
        budget.try_spend()
    assert budget.granted == 2
    assert budget.denied == 8


def test_counters_snapshot_keys():
    budget = RetryBudget(RetryBudgetConfig())
    budget.on_request()
    budget.try_spend()
    counters = budget.counters()
    assert set(counters) == {
        "budget_deposited",
        "budget_granted",
        "budget_denied",
        "budget_tokens",
    }
    assert counters["budget_granted"] == 1.0
