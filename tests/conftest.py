"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.calibration import default_calibration
from repro.cpu.scheduler import CPU
from repro.net.link import Link
from repro.net.tcp import Connection
from repro.sim.core import Environment


@pytest.fixture
def env():
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def calib():
    """The default calibration (shared, immutable)."""
    return default_calibration()


@pytest.fixture
def cpu(env, calib):
    """A single-core CPU on the fresh environment."""
    return CPU(env, calib)


@pytest.fixture
def lan(calib):
    """A plain LAN link."""
    return Link.lan(calib)


@pytest.fixture
def make_connection(env, lan, calib):
    """Factory for connections on the shared env/link."""

    def _make(**kwargs) -> Connection:
        return Connection(env, lan, calib, **kwargs)

    return _make


def run_process(env, generator):
    """Start ``generator`` as a process and run the sim to completion,
    returning the process's return value."""
    process = env.process(generator)
    env.run()
    return process.value
