"""RUBBoS workload model: interactions, Markov chain, statistics."""

import random

import pytest

from repro.workload.rubbos import (
    RUBBOS_INTERACTIONS,
    RubbosMix,
    _TRANSITIONS,
    interaction_table,
    mean_response_size,
)


def test_exactly_24_interactions():
    assert len(RUBBOS_INTERACTIONS) == 24
    assert len({i.name for i in RUBBOS_INTERACTIONS}) == 24


def test_every_transition_target_exists():
    names = {i.name for i in RUBBOS_INTERACTIONS}
    for state, transitions in _TRANSITIONS.items():
        assert state in names
        for target, _weight in transitions:
            assert target in names, f"{state} -> {target}"


def test_every_interaction_has_transitions():
    for interaction in RUBBOS_INTERACTIONS:
        assert interaction.name in _TRANSITIONS


def test_transition_weights_sum_to_one():
    for state, transitions in _TRANSITIONS.items():
        assert sum(w for _, w in transitions) == pytest.approx(1.0), state


def test_mean_response_size_near_paper_value():
    """Paper: 'the average response size of Tomcat per request is about
    20KB' — the synthetic mix lands in 18-28KB."""
    mean = mean_response_size()
    assert 18 * 1024 <= mean <= 28 * 1024


def test_some_responses_exceed_send_buffer():
    """A fraction of RUBBoS pages must exceed the default 16KB buffer
    (that is where TomcatAsync's write continuations bite)."""
    big = [i for i in RUBBOS_INTERACTIONS if i.response_size > 16 * 1024]
    assert len(big) >= 5


def test_mix_produces_metadata(env):
    mix = RubbosMix()
    request = mix.sample(env, random.Random(0))
    assert request.metadata["interaction"].name == request.kind


def test_mix_navigates_between_states(env):
    mix = RubbosMix()
    rng = random.Random(1)
    kinds = {mix.sample(env, rng).kind for _ in range(200)}
    assert len(kinds) > 10  # visits a good chunk of the site


def test_clone_for_client_is_independent(env):
    mix = RubbosMix()
    clone = mix.clone_for_client()
    assert clone is not mix
    rng = random.Random(2)
    mix.sample(env, rng)
    # Advancing one navigator does not move the other.
    assert clone.state == "StoriesOfTheDay" or clone.state != mix.state


def test_unknown_start_rejected():
    with pytest.raises(Exception):
        RubbosMix(start="NotAPage")


def test_stationary_mix_is_read_heavy(env):
    """Write interactions (posts, stores, registrations) stay a small
    minority, as in RUBBoS's default read-heavy mix."""
    mix = RubbosMix()
    rng = random.Random(3)
    writes = {"RegisterUser", "SubmitStory", "PostComment", "ModerateComment", "AuthorLogin"}
    total = 3000
    write_count = sum(1 for _ in range(total) if mix.sample(env, rng).kind in writes)
    assert write_count / total < 0.20


def test_interaction_table_is_copy():
    table = interaction_table()
    table.clear()
    assert interaction_table()
