"""Closed-loop client behaviour."""

import random

import pytest

from repro.errors import WorkloadError
from repro.metrics.collector import RunRecorder
from repro.servers.threaded import ThreadedServer
from repro.workload.client import (
    ClosedLoopClient,
    ExponentialThink,
    FixedThink,
    NoThink,
)
from repro.workload.mixes import FixedMix


def make_served_connection(env, cpu, make_connection):
    server = ThreadedServer(env, cpu)
    conn = make_connection()
    server.attach(conn)
    return server, conn


def test_think_time_validation():
    with pytest.raises(WorkloadError):
        FixedThink(-1)
    with pytest.raises(WorkloadError):
        ExponentialThink(0)


def test_no_think_samples_zero():
    assert NoThink().sample(random.Random(0)) == 0.0


def test_fixed_think_constant():
    think = FixedThink(2.5)
    assert think.sample(random.Random(0)) == 2.5


def test_exponential_think_mean():
    think = ExponentialThink(2.0)
    rng = random.Random(9)
    samples = [think.sample(rng) for _ in range(5000)]
    assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.1)


def test_client_keeps_one_request_in_flight(env, cpu, make_connection):
    _, conn = make_served_connection(env, cpu, make_connection)
    client = ClosedLoopClient(env, conn, FixedMix(100), random.Random(0))
    env.run(until=0.01)
    # With zero think time the client completed many sequential requests.
    assert client.requests_completed > 3
    # Never more than one outstanding: inbox holds at most one request.
    assert len(conn.inbox) <= 1


def test_client_records_to_recorder(env, cpu, make_connection):
    _, conn = make_served_connection(env, cpu, make_connection)
    recorder = RunRecorder(env, warmup=0.0)
    ClosedLoopClient(env, conn, FixedMix(100), random.Random(0), recorder=recorder)
    env.run(until=0.01)
    assert recorder.response_times.count > 0


def test_think_time_reduces_request_rate(env, cpu, make_connection):
    _, conn1 = make_served_connection(env, cpu, make_connection)
    _, conn2 = make_served_connection(env, cpu, make_connection)
    eager = ClosedLoopClient(env, conn1, FixedMix(100), random.Random(0))
    lazy = ClosedLoopClient(
        env, conn2, FixedMix(100), random.Random(0), think=FixedThink(0.01)
    )
    env.run(until=0.1)
    assert eager.requests_completed > 3 * lazy.requests_completed


def test_initial_delay_postpones_first_request(env, cpu, make_connection):
    _, conn = make_served_connection(env, cpu, make_connection)
    client = ClosedLoopClient(
        env, conn, FixedMix(100), random.Random(0), initial_delay=0.05
    )
    env.run(until=0.04)
    assert client.requests_completed == 0
    env.run(until=0.1)
    assert client.requests_completed > 0
