"""Request mixes."""

import random

import pytest

from repro.errors import WorkloadError
from repro.workload.mixes import (
    SIZE_LARGE,
    SIZE_SMALL,
    BimodalMix,
    FixedMix,
    WeightedMix,
    ZipfMix,
)


def test_fixed_mix_always_same(env):
    mix = FixedMix(1234)
    rng = random.Random(0)
    for _ in range(5):
        request = mix.sample(env, rng)
        assert request.response_size == 1234
        assert request.kind == "fixed-1234B"
    assert mix.kinds() == ["fixed-1234B"]


def test_fixed_mix_validation():
    with pytest.raises(WorkloadError):
        FixedMix(-1)


def test_bimodal_fraction_validation():
    with pytest.raises(WorkloadError):
        BimodalMix(1.5)


def test_bimodal_empirical_fraction(env):
    mix = BimodalMix(0.2)
    rng = random.Random(42)
    heavy = sum(
        1 for _ in range(5000) if mix.sample(env, rng).kind == "heavy"
    )
    assert 0.17 <= heavy / 5000 <= 0.23


def test_bimodal_extremes(env):
    rng = random.Random(0)
    assert all(BimodalMix(0.0).sample(env, rng).kind == "light" for _ in range(50))
    assert all(BimodalMix(1.0).sample(env, rng).kind == "heavy" for _ in range(50))


def test_bimodal_sizes(env):
    rng = random.Random(1)
    mix = BimodalMix(0.5, light_size=10, heavy_size=20)
    sizes = {mix.sample(env, rng).response_size for _ in range(100)}
    assert sizes == {10, 20}


def test_weighted_mix_validation():
    with pytest.raises(WorkloadError):
        WeightedMix([])
    with pytest.raises(WorkloadError):
        WeightedMix([("a", 10, -1.0)])
    with pytest.raises(WorkloadError):
        WeightedMix([("a", 10, 0.0)])
    with pytest.raises(WorkloadError):
        WeightedMix([("a", -10, 1.0)])


def test_weighted_mix_distribution(env):
    mix = WeightedMix([("a", 1, 3.0), ("b", 2, 1.0)])
    rng = random.Random(7)
    counts = {"a": 0, "b": 0}
    for _ in range(4000):
        counts[mix.sample(env, rng).kind] += 1
    assert 0.70 <= counts["a"] / 4000 <= 0.80


def test_weighted_mean_response_size():
    mix = WeightedMix([("a", 100, 1.0), ("b", 300, 1.0)])
    assert mix.mean_response_size == pytest.approx(200.0)


def test_zipf_light_requests_dominate(env):
    mix = ZipfMix([SIZE_SMALL, 1024, 10240, SIZE_LARGE], exponent=1.0)
    rng = random.Random(3)
    smallest = sum(
        1
        for _ in range(4000)
        if mix.sample(env, rng).response_size == SIZE_SMALL
    )
    # Zipf with s=1 over 4 ranks: P(rank 1) = 1/H4 ~ 0.48.
    assert smallest / 4000 > 0.4


def test_zipf_validation():
    with pytest.raises(WorkloadError):
        ZipfMix([])
    with pytest.raises(WorkloadError):
        ZipfMix([100], exponent=-1)


def test_stateless_mix_clone_is_shared():
    mix = FixedMix(100)
    assert mix.clone_for_client() is mix
