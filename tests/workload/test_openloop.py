"""Open-loop Poisson workload generation (extension)."""

import random

import pytest

from repro.errors import WorkloadError
from repro.metrics.collector import RunRecorder
from repro.servers.threaded import ThreadedServer
from repro.workload.mixes import FixedMix
from repro.workload.openloop import OpenLoopGenerator


def build(env, cpu, make_connection, n_conns=8, rate=2000.0, recorder=None):
    server = ThreadedServer(env, cpu)
    connections = [make_connection() for _ in range(n_conns)]
    for conn in connections:
        server.attach(conn)
    generator = OpenLoopGenerator(
        env, connections, FixedMix(102), rate=rate,
        rng=random.Random(1), recorder=recorder,
    )
    return server, generator


def test_validation(env, cpu, make_connection):
    with pytest.raises(WorkloadError):
        build(env, cpu, make_connection, rate=0)
    server = ThreadedServer(env, cpu)
    with pytest.raises(WorkloadError):
        OpenLoopGenerator(env, [], FixedMix(1), 10.0, random.Random(0))


def test_arrival_rate_approximately_honoured(env, cpu, make_connection):
    recorder = RunRecorder(env, warmup=0.1)
    _, generator = build(env, cpu, make_connection, n_conns=32, rate=3000.0,
                         recorder=recorder)
    env.run(until=1.1)
    report = recorder.report()
    # Served throughput tracks the offered rate (server is far from
    # saturation at 3000/s of 0.1KB requests).
    assert report.throughput == pytest.approx(3000.0, rel=0.15)
    assert generator.shed < generator.issued * 0.05


def test_sheds_when_connections_exhausted(env, cpu, make_connection):
    _, generator = build(env, cpu, make_connection, n_conns=1, rate=100000.0)
    env.run(until=0.2)
    assert generator.shed > 0
    assert generator.in_flight <= 1


def test_in_flight_bounded_by_connections(env, cpu, make_connection):
    _, generator = build(env, cpu, make_connection, n_conns=4, rate=50000.0)
    env.run(until=0.1)
    assert generator.in_flight <= 4


def test_recorder_receives_completions(env, cpu, make_connection):
    recorder = RunRecorder(env, warmup=0.0)
    build(env, cpu, make_connection, rate=1000.0, recorder=recorder)
    env.run(until=0.3)
    assert recorder.response_times.count > 100
