"""Client-side resilience: RetryPolicy, timeouts, retries, reconnects."""

import random

import pytest

from repro.errors import WorkloadError
from repro.experiments.micro import MicroConfig
from repro.experiments.parallel import SweepExecutor
from repro.faults import FaultPlan
from repro.metrics.collector import RunRecorder
from repro.net.messages import Request
from repro.resilience import RetryBudget, RetryBudgetConfig
from repro.servers.base import ServerLimits
from repro.servers.threaded import ThreadedServer
from repro.workload.client import ClosedLoopClient, RetryPolicy
from repro.workload.mixes import FixedMix
from repro.workload.openloop import OpenLoopGenerator

FAST_RETRY = RetryPolicy(timeout=0.01, max_retries=2, backoff_base=0.001, jitter=0.0)


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"timeout": 0.0},
        {"timeout": -1.0},
        {"max_retries": -1},
        {"backoff_base": -0.1},
        {"backoff_factor": 0.5},
        {"jitter": 1.0},
        {"jitter": -0.1},
    ],
)
def test_retry_policy_validation(kwargs):
    with pytest.raises(WorkloadError):
        RetryPolicy(**kwargs)


def test_backoff_grows_exponentially():
    policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, jitter=0.0)
    rng = random.Random(0)
    assert policy.backoff(1, rng) == pytest.approx(0.1)
    assert policy.backoff(2, rng) == pytest.approx(0.2)
    assert policy.backoff(3, rng) == pytest.approx(0.4)


def test_backoff_jitter_is_bounded_and_deterministic():
    policy = RetryPolicy(backoff_base=0.1, backoff_factor=1.0, jitter=0.5)
    draws = [policy.backoff(1, random.Random(7)) for _ in range(3)]
    assert draws[0] == draws[1] == draws[2]  # same seed, same schedule
    rng = random.Random(3)
    for _ in range(100):
        delay = policy.backoff(1, rng)
        assert 0.05 <= delay <= 0.15


# ----------------------------------------------------------------------
# Resilient closed-loop client
# ----------------------------------------------------------------------
def serve(env, cpu, make_connection, **server_kwargs):
    server = ThreadedServer(env, cpu, **server_kwargs)
    conn = make_connection()
    server.attach(conn)
    return server, conn


def test_healthy_server_needs_no_retries(env, cpu, make_connection):
    _, conn = serve(env, cpu, make_connection)
    client = ClosedLoopClient(
        env, conn, FixedMix(100), random.Random(0), retry=RetryPolicy(timeout=1.0)
    )
    env.run(until=0.01)
    assert client.requests_completed > 3
    assert client.stats.successes == client.requests_completed
    assert client.stats.retries == 0
    assert client.stats.timeouts == 0
    assert client.stats.failures == 0


def test_unresponsive_server_times_out_and_fails(env, make_connection):
    # No server attached: requests are never answered.
    conn = make_connection()
    recorder = RunRecorder(env, warmup=0.0)
    client = ClosedLoopClient(
        env, conn, FixedMix(100), random.Random(0),
        recorder=recorder, retry=FAST_RETRY,
    )
    env.run(until=0.1)
    # No reconnect factory: the first timeout kills the only connection.
    assert client.stats.timeouts == 1
    assert client.stats.failures == 1
    assert client.stats.successes == 0
    assert recorder.failed == 1
    assert conn.closed


def test_reconnect_factory_enables_full_retry_budget(env, make_connection):
    conn = make_connection()
    client = ClosedLoopClient(
        env, conn, FixedMix(100), random.Random(0),
        retry=FAST_RETRY, reconnect=lambda: make_connection(),
    )
    env.run(until=0.06)
    # One logical request: initial attempt + max_retries, all timed out.
    assert client.stats.attempts >= 3
    assert client.stats.retries >= 2
    assert client.stats.failures >= 1
    assert client.stats.reconnects >= 2


def test_client_reconnects_after_server_side_close(env, cpu, make_connection):
    server = ThreadedServer(env, cpu)

    def fresh():
        conn = make_connection()
        server.attach(conn)
        return conn

    client = ClosedLoopClient(
        env, fresh(), FixedMix(100), random.Random(0),
        retry=RetryPolicy(timeout=1.0, backoff_base=0.0, jitter=0.0),
        reconnect=fresh,
    )
    env.run(until=0.005)
    completed_before = client.requests_completed
    assert completed_before > 0
    client.connection.close()
    env.run(until=0.015)
    assert client.stats.reconnects >= 1
    assert client.requests_completed > completed_before  # kept going


def test_rejections_are_counted_and_retried(env, cpu, make_connection):
    from tests.servers.test_shedding import SlowApplication

    server = ThreadedServer(
        env, cpu, app=SlowApplication(0.05), limits=ServerLimits(max_inflight=1)
    )
    conns = []
    for _ in range(2):
        conn = make_connection()
        server.attach(conn)
        conns.append(conn)
    clients = [
        ClosedLoopClient(
            env, conn, FixedMix(1000), random.Random(i),
            retry=RetryPolicy(timeout=1.0, max_retries=10, backoff_base=0.020,
                              jitter=0.0),
        )
        for i, conn in enumerate(conns)
    ]
    env.run(until=0.3)
    stats = [c.stats for c in clients]
    assert sum(s.rejected for s in stats) > 0
    assert sum(s.retries for s in stats) > 0
    assert sum(s.failures for s in stats) == 0  # rejections are not failures
    # The slot-holding client keeps making progress; the shed client backs
    # off (it may stay starved: zero think time re-occupies the slot
    # instantly, which is precisely why shedding picks a victim).
    assert any(c.requests_completed > 0 for c in clients)


def test_rejection_without_retry_budget_moves_on(env, cpu, make_connection):
    from tests.servers.test_shedding import SlowApplication

    server = ThreadedServer(
        env, cpu, app=SlowApplication(0.2), limits=ServerLimits(max_inflight=1)
    )
    blocker = make_connection()
    server.attach(blocker)
    blocker.send_request(Request(env, "x", 1000))  # occupies the only slot
    conn = make_connection()
    server.attach(conn)
    client = ClosedLoopClient(
        env, conn, FixedMix(1000), random.Random(0),
        retry=RetryPolicy(timeout=1.0, retry_rejections=False),
    )
    env.run(until=0.1)
    assert client.stats.rejected > 0
    assert client.stats.retries == 0
    assert client.stats.failures == 0


class AlwaysAbort:
    """Duck-typed stand-in for repro.faults.ClientFaults: abort every request."""

    def __init__(self):
        self.aborts = 0

    @property
    def abort_delay(self):
        return 0.005

    def should_abort(self):
        return True

    def record_abort(self):
        self.aborts += 1


def test_fault_injected_aborts_close_and_reconnect(env, make_connection):
    conn = make_connection()
    faults = AlwaysAbort()
    client = ClosedLoopClient(
        env, conn, FixedMix(100), random.Random(0),
        retry=RetryPolicy(timeout=1.0), reconnect=lambda: make_connection(),
        faults=faults,
    )
    env.run(until=0.05)
    assert client.stats.aborts >= 2
    assert client.stats.aborts == faults.aborts
    assert client.stats.reconnects >= 2


def test_give_up_counted_exactly_once_per_abandoned_request(env, make_connection):
    """Every abandoned logical request contributes exactly one failure —
    whether it dies at the retry gate or on a failed reconnect — and the
    attempt count brackets it: each failure burned at most 1+max_retries
    attempts, plus at most one logical request still in flight at cutoff."""
    recorder = RunRecorder(env, warmup=0.0)
    client = ClosedLoopClient(
        env, make_connection(), FixedMix(100), random.Random(0),
        recorder=recorder, retry=FAST_RETRY, reconnect=lambda: make_connection(),
    )
    env.run(until=0.2)
    stats = client.stats
    assert stats.failures >= 3  # several logical requests fully abandoned
    assert recorder.failed == stats.failures
    per_request = 1 + FAST_RETRY.max_retries
    assert stats.failures * per_request <= stats.attempts
    assert stats.attempts <= (stats.failures + 1) * per_request
    assert stats.failures * FAST_RETRY.max_retries <= stats.retries
    assert stats.retries <= (stats.failures + 1) * FAST_RETRY.max_retries


def test_jittered_backoff_identical_across_jobs():
    """The jittered retry schedule is part of the deterministic contract:
    a fault-injected micro sweep must be bit-identical under --jobs 1 and
    --jobs 4."""
    retry = RetryPolicy(timeout=0.05, max_retries=3, backoff_base=0.01,
                        backoff_factor=2.0, jitter=0.5)
    points = {
        seed: MicroConfig(
            server="SingleT-Async", concurrency=4, response_size=10 * 1024,
            duration=0.6, warmup=0.2, seed=seed,
            fault_plan=FaultPlan(reset_after_requests=3), retry=retry,
        )
        for seed in (1, 2, 3, 4)
    }
    serial = SweepExecutor("retry-det", jobs=1, cache_dir=None).map_micro(points)
    fanned = SweepExecutor("retry-det", jobs=4, cache_dir=None).map_micro(points)
    assert serial == fanned
    assert any(r.client_stats["retries"] > 0 for r in serial.values())


# ----------------------------------------------------------------------
# Retry budget and deadline at the client
# ----------------------------------------------------------------------
def test_retry_budget_gates_client_retries(env, make_connection):
    # ratio=0 with a single starting token: the population may retry
    # exactly once, ever; every later timeout must give up immediately.
    budget = RetryBudget(RetryBudgetConfig(ratio=0.0, cap=1.0, initial=1.0))
    client = ClosedLoopClient(
        env, make_connection(), FixedMix(100), random.Random(0),
        retry=FAST_RETRY, reconnect=lambda: make_connection(), budget=budget,
    )
    env.run(until=0.2)
    assert client.stats.retries == 1
    assert budget.granted == 1
    assert budget.denied >= 1
    assert client.stats.failures >= 2  # the budget-starved requests give up


def test_deadline_shorter_than_timeout_fails_without_spending_budget(
    env, make_connection
):
    # The logical deadline (2 ms) undercuts the per-attempt timeout (10 ms):
    # each request gets one truncated attempt, then the deadline gate
    # refuses the retry for free — no budget token is ever consumed.
    budget = RetryBudget(RetryBudgetConfig(ratio=0.5, cap=10.0, initial=5.0))
    client = ClosedLoopClient(
        env, make_connection(), FixedMix(100), random.Random(0),
        retry=FAST_RETRY, reconnect=lambda: make_connection(),
        budget=budget, deadline=0.002,
    )
    env.run(until=0.1)
    assert client.stats.failures >= 3
    # One attempt per logical request (+ at most one still in flight).
    assert client.stats.failures <= client.stats.attempts
    assert client.stats.attempts <= client.stats.failures + 1
    assert client.stats.retries == 0
    assert budget.granted == 0
    assert budget.denied == 0  # refused by the deadline, not the bucket


# ----------------------------------------------------------------------
# Open-loop retry supervision
# ----------------------------------------------------------------------
def test_openloop_without_policy_never_times_out(env, make_connection):
    generator = OpenLoopGenerator(
        env, [make_connection()], FixedMix(100), rate=500.0, rng=random.Random(0)
    )
    env.run(until=0.05)
    assert generator.issued > 0
    assert generator.timeouts == 0
    assert generator.failed == 0


def test_openloop_supervisor_retries_then_fails(env, make_connection):
    # Unserved connections: every attempt times out.
    recorder = RunRecorder(env, warmup=0.0)
    generator = OpenLoopGenerator(
        env,
        [make_connection() for _ in range(4)],
        FixedMix(100),
        rate=100.0,
        rng=random.Random(0),
        recorder=recorder,
        retry=FAST_RETRY,
        connect=lambda: make_connection(),
    )
    env.run(until=0.2)
    assert generator.timeouts > 0
    assert generator.failed > 0
    assert recorder.failed == generator.failed
