"""Population builder."""

import pytest

from repro.metrics.collector import RunRecorder
from repro.servers.threaded import ThreadedServer
from repro.sim.rng import SeedStreams
from repro.workload.mixes import FixedMix
from repro.workload.population import ConnectionOptions, build_population


def build(env, cpu, lan, calib, size=4, **kwargs):
    server = ThreadedServer(env, cpu)
    return build_population(
        env,
        server,
        size=size,
        mix=FixedMix(100),
        link=lan,
        calibration=calib,
        seeds=SeedStreams(1),
        **kwargs,
    )


def test_size_validation(env, cpu, lan, calib):
    with pytest.raises(ValueError):
        build(env, cpu, lan, calib, size=0)


def test_population_wires_clients_and_connections(env, cpu, lan, calib):
    population = build(env, cpu, lan, calib, size=6)
    assert population.size == 6
    assert len(population.connections) == 6
    env.run(until=0.01)
    assert population.completed_requests > 0


def test_connection_options_applied(env, cpu, lan, calib):
    population = build(
        env, cpu, lan, calib,
        options=ConnectionOptions(send_buffer_size=4096),
    )
    assert all(c.buffer.capacity == 4096 for c in population.connections)


def test_autotune_option_applied(env, cpu, lan, calib):
    population = build(env, cpu, lan, calib, options=ConnectionOptions(autotune=True))
    assert all(c.autotune for c in population.connections)


def test_ramp_up_staggers_clients(env, cpu, lan, calib):
    population = build(env, cpu, lan, calib, size=4, ramp_up=1.0)
    delays = [c.initial_delay for c in population.clients]
    assert delays == [0.0, 0.25, 0.5, 0.75]


def test_recorder_shared_across_clients(env, cpu, lan, calib):
    recorder = RunRecorder(env, warmup=0.0)
    build(env, cpu, lan, calib, recorder=recorder)
    env.run(until=0.01)
    assert recorder.response_times.count > 0


def test_clients_use_distinct_rng_streams(env, cpu, lan, calib):
    population = build(env, cpu, lan, calib, size=3)
    rngs = [c.rng for c in population.clients]
    assert len({id(r) for r in rngs}) == 3
