"""Cohort engine: accounting, determinism, episodes and fold-back."""

import pytest

from repro.cohort import COHORT_ENV, CohortConfig
from repro.errors import WorkloadError
from repro.experiments.micro import MicroConfig, run_micro
from repro.faults import FaultPlan
from repro.servers.threaded import ThreadedServer
from repro.sim.rng import SeedStreams
from repro.workload.client import (
    ExponentialThink,
    FixedThink,
    NoThink,
    RetryPolicy,
    ThinkTime,
)
from repro.workload.mixes import FixedMix
from repro.workload.population import build_population

pytestmark = pytest.mark.cohort


def _build(env, cpu, lan, calib, monkeypatch, size=60, **kwargs):
    monkeypatch.setenv(COHORT_ENV, "1")
    server = ThreadedServer(env, cpu)
    cohort = kwargs.pop(
        "cohort", CohortConfig(first_think=True, max_inflight=8)
    )
    return build_population(
        env,
        server,
        size=size,
        mix=FixedMix(100),
        link=lan,
        calibration=calib,
        seeds=SeedStreams(1),
        think=kwargs.pop("think", ExponentialThink(0.05)),
        cohort=cohort,
        **kwargs,
    )


def test_lazy_build_returns_cohort_population(env, cpu, lan, calib, monkeypatch):
    population = _build(env, cpu, lan, calib, monkeypatch)
    assert population.size == 60
    assert population.clients == []
    (cohort,) = population.cohorts
    assert cohort.unstarted == 60


class _UniformThink(ThinkTime):
    """A think-time class the engine has no closed form for, so the
    generic sampled-heap arrival engine carries it."""

    def sample(self, rng):
        return rng.uniform(0.01, 0.09)


@pytest.mark.parametrize(
    "think",
    [ExponentialThink(0.05), FixedThink(0.05), NoThink(), _UniformThink()],
    ids=["exponential", "fixed", "none", "sampled"],
)
def test_member_accounting_sums_to_size(env, cpu, lan, calib, monkeypatch, think):
    """Every arrival engine keeps the member ledger closed."""
    population = _build(env, cpu, lan, calib, monkeypatch, think=think)
    (cohort,) = population.cohorts
    for until in (0.01, 0.1, 0.3):
        env.run(until=until)
        accounting = cohort.member_accounting()
        assert sum(accounting.values()) == cohort.size, accounting
        assert all(v >= 0 for v in accounting.values()), accounting
    assert population.completed_requests > 0
    assert cohort.stats.entered == cohort.size


def test_bundle_respects_max_inflight(env, cpu, lan, calib, monkeypatch):
    population = _build(
        env, cpu, lan, calib, monkeypatch,
        cohort=CohortConfig(first_think=True, max_inflight=3),
        think=ExponentialThink(0.001),
    )
    (cohort,) = population.cohorts
    env.run(until=0.3)
    assert cohort.stats.connections_opened <= 3
    assert cohort.stats.inflight_peak <= 3
    assert len(population.connections) <= 3


def test_observer_materialize_and_fold_back(env, cpu, lan, calib, monkeypatch):
    population = _build(env, cpu, lan, calib, monkeypatch)
    (cohort,) = population.cohorts
    env.run(until=0.05)
    client = cohort.materialize(7)
    assert cohort.materialized[7] is client
    # Idempotent while the episode lives.
    assert cohort.materialize(7) is client
    accounting = cohort.member_accounting()
    assert sum(accounting.values()) == cohort.size
    assert accounting["materialized"] == 1
    with pytest.raises(WorkloadError):
        cohort.materialize(cohort.size + 5)
    env.run(until=2.0)
    # The episode served its request(s) and folded back into the pool.
    assert 7 not in cohort.materialized
    assert cohort.stats.folded >= 1
    assert sum(cohort.member_accounting().values()) == cohort.size


def _episode_config(concurrency=400):
    return MicroConfig(
        "SingleT-Async",
        concurrency,
        duration=1.5,
        warmup=0.3,
        think_mean=0.5,
        fault_plan=FaultPlan(
            reset_request_prob=0.005,
            client_abort_prob=0.02,
            rto=0.05,
        ),
        retry=RetryPolicy(timeout=0.1, max_retries=2, backoff_base=0.01),
        cohort=CohortConfig(first_think=True, max_inflight=64),
    )


def test_fold_back_invariants_under_faults(monkeypatch):
    monkeypatch.setenv(COHORT_ENV, "1")
    result = run_micro(_episode_config())
    stats = result.cohort_stats
    assert stats["episodes"] > 0
    # Every episode either folded back or is still live at run end.
    assert stats["folded"] + stats["materialized_now"] == stats["episodes"]
    assert stats["materialized_peak"] >= stats["materialized_now"]
    assert stats["entered"] == stats["size"]
    # Aggregate + episode successes are what the population reports.
    totals = result.client_stats
    assert totals["successes"] >= stats["completed"]


def test_lazy_engine_deterministic_across_runs(monkeypatch):
    monkeypatch.setenv(COHORT_ENV, "1")
    first = run_micro(_episode_config())
    second = run_micro(_episode_config())
    assert first.report == second.report
    assert first.kernel_events == second.kernel_events
    assert first.cohort_stats == second.cohort_stats
    assert first.client_stats == second.client_stats
