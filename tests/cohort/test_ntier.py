"""Cohort wiring through the 3-tier topology runner."""

import pytest

from repro.cohort import COHORT_ENV, CohortConfig
from repro.ntier.topology import NTierConfig, run_ntier

pytestmark = pytest.mark.cohort


def _config(cohort):
    return NTierConfig(
        tomcat_variant="async",
        users=1500,
        think_mean=1.0,
        duration=1.2,
        warmup=0.3,
        timeline_bucket=0.25,
        seed=9,
        cohort=cohort,
    )


def test_ntier_lazy_cohort_engages_and_reproduces(monkeypatch):
    monkeypatch.setenv(COHORT_ENV, "1")
    first = run_ntier(_config(CohortConfig(first_think=True, max_inflight=128)))
    second = run_ntier(_config(CohortConfig(first_think=True, max_inflight=128)))
    assert first.cohort_stats
    assert first.cohort_stats["entered"] == 1500.0
    assert first.report.completed > 0
    assert first.report == second.report
    assert first.cohort_stats == second.cohort_stats
    assert first.kernel_events == second.kernel_events


def test_ntier_always_mode_is_bit_identical_to_no_cohort(monkeypatch):
    monkeypatch.setenv(COHORT_ENV, "1")
    plain = run_ntier(_config(None))
    always = run_ntier(_config(CohortConfig(materialize="always")))
    assert plain.report == always.report
    assert plain.kernel_events == always.kernel_events
    assert always.cohort_stats == {}