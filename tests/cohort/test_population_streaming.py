"""Streaming population counters and the lazy ramp-up chain."""

import pytest

from repro.calibration import default_calibration
from repro.cpu.scheduler import CPU
from repro.net.link import Link
from repro.servers.threaded import ThreadedServer
from repro.sim.core import Environment
from repro.sim.rng import SeedStreams
from repro.workload.mixes import FixedMix
from repro.workload.population import PopulationCounters, build_population

pytestmark = pytest.mark.cohort


def _build(env, cpu, lan, calib, **kwargs):
    server = ThreadedServer(env, cpu)
    return build_population(
        env,
        server,
        size=kwargs.pop("size", 6),
        mix=FixedMix(100),
        link=lan,
        calibration=calib,
        seeds=SeedStreams(1),
        **kwargs,
    )


def test_streaming_counter_matches_per_client_sweep(env, cpu, lan, calib):
    population = _build(env, cpu, lan, calib)
    assert isinstance(population.counters, PopulationCounters)
    env.run(until=0.05)
    swept = sum(c.requests_completed for c in population.clients)
    assert swept > 0
    assert population.completed_requests == population.counters.completed == swept


def test_client_stat_totals_single_pass(env, cpu, lan, calib):
    population = _build(env, cpu, lan, calib)
    env.run(until=0.05)
    totals = population.client_stat_totals()
    assert totals["successes"] == sum(c.stats.successes for c in population.clients)
    assert totals["attempts"] == sum(c.stats.attempts for c in population.clients)
    assert population.cohort_stats() == {}


def test_lazy_rampup_chains_construction(env, cpu, lan, calib):
    population = _build(
        env, cpu, lan, calib, size=8, ramp_up=0.4, lazy_rampup=True
    )
    # Nothing is built until the sim runs; clients appear one per step.
    assert population.clients == []
    env.run(until=0.26)
    assert 0 < len(population.clients) < 8
    env.run(until=0.45)
    assert len(population.clients) == 8
    assert all(c.initial_delay == 0.0 for c in population.clients)


def test_lazy_rampup_deterministic():
    def _completed():
        env = Environment()
        calib = default_calibration()
        population = _build(
            env, CPU(env, calib), Link.lan(calib), calib,
            size=8, ramp_up=0.2, lazy_rampup=True,
        )
        env.run(until=0.6)
        return population.completed_requests, env.events_processed

    assert _completed() == _completed()
