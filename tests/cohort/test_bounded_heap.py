"""Heap stays bounded at populations the classic builder cannot hold."""

import tracemalloc

import pytest

from repro.cohort import COHORT_ENV, CohortConfig
from repro.experiments.micro import MicroConfig, run_micro

pytestmark = pytest.mark.cohort


def test_hundred_thousand_clients_bounded_heap(monkeypatch):
    """100k closed-loop clients under a flat traced-heap budget.

    The classic builder allocates ~100k clients + connections (hundreds
    of MB and an hours-long run at this think ratio); the cohort engine
    holds counting state plus a bounded bundle.  The 32 MB budget is
    generous headroom over the ~0.2 MB measured peak — the assertion is
    that heap does not scale with N, not a tight byte count.
    """
    monkeypatch.setenv(COHORT_ENV, "1")
    config = MicroConfig(
        "SingleT-Async",
        100_000,
        duration=3.0,
        warmup=1.0,
        think_mean=200.0,
        cohort=CohortConfig(first_think=True, max_inflight=1024),
    )
    tracemalloc.start()
    result = run_micro(config)
    peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    assert result.cohort_stats["entered"] == 100_000.0
    assert result.report.completed > 0
    assert peak < 32 * 1024 * 1024, f"peak traced heap {peak / 1e6:.1f} MB"
