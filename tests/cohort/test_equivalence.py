"""The three-way zero-impact contract of the cohort layer.

``materialize="always"``, ``enabled=False`` and the ``REPRO_COHORT=0``
kill switch must all route through the classic eager builder and be
bit-identical to passing no cohort config at all.
"""

import pytest

from repro.cohort import COHORT_ENV, CohortConfig
from repro.experiments.micro import MicroConfig, run_micro

pytestmark = pytest.mark.cohort


def _config(cohort):
    return MicroConfig(
        "SingleT-Async",
        64,
        duration=0.5,
        warmup=0.1,
        think_mean=0.05,
        cohort=cohort,
    )


def _identical(a, b):
    return (
        a.report == b.report
        and a.kernel_events == b.kernel_events
        and a.server_stats == b.server_stats
    )


def test_materialize_always_is_bit_identical_to_no_cohort(monkeypatch):
    monkeypatch.setenv(COHORT_ENV, "1")
    plain = run_micro(_config(None))
    always = run_micro(_config(CohortConfig(materialize="always")))
    assert _identical(plain, always)
    assert always.cohort_stats == {}


def test_disabled_config_is_bit_identical_to_no_cohort(monkeypatch):
    monkeypatch.setenv(COHORT_ENV, "1")
    plain = run_micro(_config(None))
    disabled = run_micro(_config(CohortConfig(enabled=False)))
    assert _identical(plain, disabled)
    assert disabled.cohort_stats == {}


def test_kill_switch_demotes_lazy_to_classic(monkeypatch):
    monkeypatch.setenv(COHORT_ENV, "1")
    plain = run_micro(_config(None))
    monkeypatch.setenv(COHORT_ENV, "0")
    demoted = run_micro(_config(CohortConfig(materialize="lazy")))
    assert _identical(plain, demoted)
    assert demoted.cohort_stats == {}


def test_lazy_engine_actually_engages(monkeypatch):
    monkeypatch.setenv(COHORT_ENV, "1")
    lazy = run_micro(_config(CohortConfig(materialize="lazy")))
    assert lazy.cohort_stats
    assert lazy.cohort_stats["entered"] == 64.0
    assert lazy.report.completed > 0
