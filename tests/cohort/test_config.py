"""CohortConfig validation and the REPRO_COHORT kill switch."""

import pytest

from repro.cohort import COHORT_ENV, CohortConfig, cohort_enabled
from repro.errors import ExperimentError

pytestmark = pytest.mark.cohort


def test_default_config_validates():
    config = CohortConfig()
    assert config.validate() is config


@pytest.mark.parametrize(
    "kwargs",
    [
        {"materialize": "sometimes"},
        {"max_inflight": 0},
        {"ramp_slices": 0},
        {"episode_requests": 0},
        {"streaming_threshold": 0},
    ],
)
def test_invalid_config_rejected(kwargs):
    with pytest.raises(ExperimentError):
        CohortConfig(**kwargs).validate()


def test_kill_switch_default_on(monkeypatch):
    monkeypatch.delenv(COHORT_ENV, raising=False)
    assert cohort_enabled()


@pytest.mark.parametrize("value", ["0", "off", "no", "false", " FALSE "])
def test_kill_switch_disabling_values(monkeypatch, value):
    monkeypatch.setenv(COHORT_ENV, value)
    assert not cohort_enabled()


@pytest.mark.parametrize("value", ["1", "on", "yes", ""])
def test_kill_switch_enabling_values(monkeypatch, value):
    monkeypatch.setenv(COHORT_ENV, value)
    assert cohort_enabled()


def test_lazy_active_requires_all_three(monkeypatch):
    monkeypatch.setenv(COHORT_ENV, "1")
    assert CohortConfig().lazy_active()
    assert not CohortConfig(enabled=False).lazy_active()
    assert not CohortConfig(materialize="always").lazy_active()
    monkeypatch.setenv(COHORT_ENV, "0")
    assert not CohortConfig().lazy_active()
