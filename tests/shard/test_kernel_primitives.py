"""Kernel primitives the sharded runtime leans on.

The island workers drive the serial :class:`Environment` through three
load-bearing mechanisms:

* :meth:`Environment.schedule_keyed` with negative keys from
  :data:`CUT_BASE` — same-time cross-shard deliveries must sort *before*
  same-time local events without consuming local insertion ids;
* :meth:`Environment.run_window` barrier windows — pooled timeouts must
  keep recycling across window boundaries exactly as they do inside one
  long :meth:`Environment.run`;
* per-barrier message batches — applying thousands of cut messages
  window by window must keep the event heap bounded by the batch size,
  not the message total.
"""

from __future__ import annotations

import pytest

from repro.shard.channels import CUT_BASE
from repro.sim.core import Environment

pytestmark = pytest.mark.shard


def _tracer(env: Environment, order: list, tag):
    """An untriggered event that appends ``tag`` when it fires."""
    event = env.event()
    event.callbacks.append(lambda _event: order.append(tag))
    return event


class TestCutKeyOrdering:
    """Same-timestamp ties across the eid-namespace boundary."""

    def test_cut_deliveries_fire_before_same_time_local_events(self):
        """Keyed deliveries beat local events at an identical timestamp.

        The local events are scheduled *first*, so their insertion ids are
        the smallest the local namespace has handed out — if the cut keys
        leaked into that namespace (or sorted above it), at least one
        local event would fire first.
        """
        env = Environment()
        order: list = []
        at = 1.0
        for i in range(3):
            env.schedule_event_at(_tracer(env, order, ("local", i)), at)
        key = CUT_BASE
        for i in range(3):
            env.schedule_keyed(_tracer(env, order, ("cut", i)), at, key)
            key += 1
        env.run(until=2.0)
        assert order == [
            ("cut", 0), ("cut", 1), ("cut", 2),
            ("local", 0), ("local", 1), ("local", 2),
        ]

    def test_keyed_scheduling_does_not_consume_local_insertion_ids(self):
        """Local same-time ordering is independent of interleaved keys.

        Two environments schedule the same three local events at one
        timestamp; the second interleaves keyed deliveries between them.
        If ``schedule_keyed`` drew from the local eid counter, the local
        relative order would differ between the two runs.
        """
        plain_env = Environment()
        plain: list = []
        for i in range(3):
            plain_env.schedule_event_at(_tracer(plain_env, plain, i), 1.0)
        plain_env.run(until=2.0)

        mixed_env = Environment()
        mixed: list = []
        key = CUT_BASE
        for i in range(3):
            mixed_env.schedule_keyed(
                _tracer(mixed_env, mixed, ("cut", i)), 1.0, key
            )
            key += 1
            mixed_env.schedule_event_at(_tracer(mixed_env, mixed, i), 1.0)
        mixed_env.run(until=2.0)

        assert plain == [0, 1, 2]
        assert [tag for tag in mixed if not isinstance(tag, tuple)] == plain

    def test_monotone_cut_keys_replay_batch_order(self):
        """Within one barrier batch, key order is delivery order."""
        env = Environment()
        order: list = []
        key = CUT_BASE
        for i in (2, 0, 1):  # append order deliberately != key order
            env.schedule_keyed(_tracer(env, order, i), 0.5, key + i)
        env.run(until=1.0)
        assert order == [0, 1, 2]


class TestRunWindowPooling:
    """Pooled-timeout reuse across barrier-window sequences."""

    def test_pooled_timeouts_recycle_across_windows(self):
        """Ten windows of pooled timers reuse the first window's objects.

        ``run_window`` must feed fired pooled timeouts back to the free
        list exactly like ``run`` does — a worker island runs thousands
        of windows, and a pool leak there would rebuild every timer
        object the serial kernel's pooling exists to avoid.
        """
        env = Environment()
        fired: list = []
        identities = set()
        windows, per_window = 10, 5
        for w in range(windows):
            start = w * 0.1
            for k in range(per_window):
                timeout = env.pooled_schedule_at(
                    start + 0.05 + k * 1e-4, (w, k)
                )
                timeout.callbacks.append(
                    lambda event: fired.append(event._value)
                )
                identities.add(id(timeout))
            env.run_window(start + 0.1)
        assert fired == [
            (w, k) for w in range(windows) for k in range(per_window)
        ]
        # Free-list recycling: every window after the first reuses the
        # first window's objects instead of allocating fresh ones.
        assert len(identities) == per_window

    def test_run_window_leaves_the_horizon_clock_alone(self):
        """The clock stays at the last fired event, not the horizon.

        Peers may still inject messages firing exactly *at* the horizon;
        advancing ``now`` to the horizon on an early drain would make
        those arrivals appear in the past.
        """
        env = Environment()
        env.pooled_schedule_at(0.03, None)
        env.run_window(0.1)
        assert env.now == 0.03
        # The next window's injection at the horizon is still legal.
        env.schedule_keyed(env.event(), 0.1, CUT_BASE)


class TestChurnHeapBound:
    """Cross-shard message churn must not accumulate in the heap."""

    def test_ten_thousand_cut_messages_keep_the_heap_bounded(self):
        """100 windows x 100 messages: peak heap ~ one batch, end empty.

        Mimics a worker island's steady state — each barrier applies a
        batch of keyed deliveries strictly inside the next window, then
        runs the window.  The heap must stay bounded by the per-window
        batch (plus pooled-timeout slack), never by the 10k total.
        """
        env = Environment()
        windows, batch = 100, 100
        width = 0.01
        step = width / (batch + 1)
        key = CUT_BASE
        applied = 0
        peak = 0
        for w in range(windows):
            base = w * width
            for i in range(batch):
                event = env.event()
                event.callbacks.append(lambda _event: None)
                env.schedule_keyed(event, base + (i + 1) * step, key)
                key += 1
                applied += 1
            peak = max(peak, len(env._queue))
            env.run_window(base + width)
        assert applied == windows * batch == 10_000
        assert env.events_processed >= applied
        assert not env._queue
        assert peak <= 2 * batch
