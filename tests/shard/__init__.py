"""Sharded parallel kernel tests (repro.shard)."""
