"""Partition validators: the proven-safe envelope, as unit rules.

Every rule here mirrors a divergence mode the partitioner must refuse
to shard (see :mod:`repro.shard.partition`); the golden shard rows in
``tests/test_shard_golden.py`` prove the *accepted* envelope is
bit-identical, these prove the rejections stay rejections.
"""

from __future__ import annotations

import pytest

from repro.cohort import CohortConfig
from repro.experiments.micro import MicroConfig
from repro.faults import FaultPlan
from repro.ntier.topology import NTierConfig
from repro.shard.partition import micro_islands, ntier_islands
from repro.workload.client import RetryPolicy

pytestmark = pytest.mark.shard


def _micro(**kw) -> MicroConfig:
    return MicroConfig("sTomcat-Async", 8, duration=0.4, warmup=0.1, **kw)


def _ntier(**kw) -> NTierConfig:
    return NTierConfig("async", users=40, duration=1.0, warmup=0.3, **kw)


class TestMicroRules:
    def test_plain_config_cuts_into_two_islands(self):
        assert micro_islands(_micro(), 2) == 2
        assert micro_islands(_micro(), 8) == 2  # bounded by the topology

    def test_single_shard_request_is_serial(self):
        assert micro_islands(_micro(), 1) == 0
        assert micro_islands(_micro(), 0) == 0

    @pytest.mark.parametrize(
        "kw",
        [
            {"fault_plan": FaultPlan(segment_loss_prob=0.05)},
            {"retry": RetryPolicy(timeout=0.05)},
            {"autotune": True},
        ],
        ids=["faults", "retry", "autotune"],
    )
    def test_teardown_sources_fall_back_serial(self, kw):
        assert micro_islands(_micro(**kw), 4) == 0

    def test_inert_fault_plan_still_shards(self):
        """An all-zero plan instantiates no fault machinery — shardable."""
        assert micro_islands(_micro(fault_plan=FaultPlan()), 2) == 2

    def test_dynamic_cohort_needs_a_passive_front(self, monkeypatch):
        """Demand-grown bundles only shard over selector-only attaches.

        A mid-run ``attach`` on a thread-per-connection front spawns a
        handler thread one cut latency later than serial, shifting the
        live-thread footprint window — so sTomcat-Sync must run serial
        while SingleT-Async (selector registration only) may shard.
        """
        monkeypatch.setenv("REPRO_COHORT", "1")
        dynamic = CohortConfig(max_inflight=64, first_think=True)
        passive = MicroConfig(
            "SingleT-Async", 2000, duration=0.4, warmup=0.1,
            think_mean=10.0, cohort=dynamic,
        )
        threaded = MicroConfig(
            "sTomcat-Sync", 2000, duration=0.4, warmup=0.1,
            think_mean=10.0, cohort=dynamic,
        )
        assert micro_islands(passive, 2) == 2
        assert micro_islands(threaded, 2) == 0

    def test_eager_cohort_shards_over_any_front(self, monkeypatch):
        """A provisioned bundle attaches before the clock starts."""
        monkeypatch.setenv("REPRO_COHORT", "1")
        eager = CohortConfig(
            max_inflight=64, first_think=True, eager_connections=True
        )
        config = MicroConfig(
            "sTomcat-Sync", 2000, duration=0.4, warmup=0.1,
            think_mean=10.0, cohort=eager,
        )
        assert micro_islands(config, 2) == 2


class TestNTierRules:
    def test_island_count_is_bounded_by_the_tier_chain(self):
        assert ntier_islands(_ntier(), 2) == 2
        assert ntier_islands(_ntier(), 3) == 3
        assert ntier_islands(_ntier(), 4) == 4
        assert ntier_islands(_ntier(), 16) == 4

    @pytest.mark.parametrize(
        "kw",
        [
            {"fault_plan": FaultPlan(segment_loss_prob=0.05)},
            {"retry": RetryPolicy(timeout=0.05)},
        ],
        ids=["faults", "retry"],
    )
    def test_teardown_sources_fall_back_serial(self, kw):
        assert ntier_islands(_ntier(**kw), 4) == 0

    def test_dynamic_cohort_falls_back_serial(self, monkeypatch):
        """The n-tier front (apache) is thread-per-connection."""
        monkeypatch.setenv("REPRO_COHORT", "1")
        config = _ntier(
            think_mean=4.0,
            cohort=CohortConfig(max_inflight=64, first_think=True),
        )
        assert ntier_islands(config, 2) == 0

    def test_eager_cohort_shards(self, monkeypatch):
        monkeypatch.setenv("REPRO_COHORT", "1")
        config = _ntier(
            think_mean=4.0,
            cohort=CohortConfig(
                max_inflight=64, first_think=True, eager_connections=True
            ),
        )
        assert ntier_islands(config, 4) == 4

    def test_killed_cohort_is_not_dynamic(self, monkeypatch):
        """Under REPRO_COHORT=0 the lazy engine demotes to the classic
        builder, so the dynamic-bundle exclusion no longer applies."""
        monkeypatch.setenv("REPRO_COHORT", "0")
        config = _ntier(
            think_mean=4.0,
            cohort=CohortConfig(max_inflight=64, first_think=True),
        )
        assert ntier_islands(config, 2) == 2
