"""Level-triggered selector semantics."""

import pytest

from repro.errors import NetworkError
from repro.net.messages import Request
from repro.net.selector import EVENT_READ, EVENT_WRITE, Selector


def send(env, conn, size=100):
    request = Request(env, "x", size)
    conn.send_request(request)
    return request


def test_invalid_mask_rejected(env, make_connection):
    selector = Selector(env)
    with pytest.raises(NetworkError):
        selector.register(make_connection(), 0)


def test_poll_returns_immediately_when_ready(env, make_connection):
    selector = Selector(env)
    conn = make_connection()
    send(env, conn)
    env.run()
    selector.register(conn, EVENT_READ)
    poll = selector.poll()
    assert poll.triggered
    assert poll.value == [(conn, EVENT_READ)]


def test_poll_blocks_until_readable(env, make_connection):
    selector = Selector(env)
    conn = make_connection()
    selector.register(conn, EVENT_READ)
    poll = selector.poll()
    assert not poll.triggered
    send(env, conn)
    env.run()
    assert poll.triggered


def test_only_one_outstanding_poll(env, make_connection):
    selector = Selector(env)
    selector.register(make_connection(), EVENT_READ)
    selector.poll()
    with pytest.raises(NetworkError):
        selector.poll()


def test_write_readiness_follows_buffer(env, make_connection, calib):
    selector = Selector(env)
    conn = make_connection()
    selector.register(conn, EVENT_WRITE)
    ready = selector.ready_list()
    assert ready == [(conn, EVENT_WRITE)]
    conn.open_transfer(calib.tcp_send_buffer)
    conn.try_write(calib.tcp_send_buffer)
    assert selector.ready_list() == []
    poll = selector.poll()
    env.run()  # ACKs free space
    assert poll.triggered


def test_register_during_pending_poll_arms_watcher(env, make_connection):
    """The Tomcat pattern: unregister during processing, re-register after;
    the pending poll must still see the connection's next request."""
    selector = Selector(env)
    conn = make_connection()
    selector.register(conn, EVENT_READ)
    send(env, conn)
    env.run()
    poll = selector.poll()
    assert poll.triggered
    selector.unregister(conn)
    conn.read_request()
    poll2 = selector.poll()  # nothing registered: blocks
    assert not poll2.triggered
    selector.register(conn, EVENT_READ)  # re-register while poll pending
    send(env, conn)
    env.run()
    assert poll2.triggered
    assert poll2.value == [(conn, EVENT_READ)]


def test_unregistered_connection_never_reported(env, make_connection):
    selector = Selector(env)
    conn = make_connection()
    selector.register(conn, EVENT_READ)
    selector.unregister(conn)
    send(env, conn)
    env.run()
    assert selector.ready_list() == []


def test_modify_requires_registration(env, make_connection):
    selector = Selector(env)
    with pytest.raises(NetworkError):
        selector.modify(make_connection(), EVENT_READ)


def test_combined_mask_reports_both(env, make_connection):
    selector = Selector(env)
    conn = make_connection()
    selector.register(conn, EVENT_READ | EVENT_WRITE)
    send(env, conn)
    env.run()
    [(reported, mask)] = selector.ready_list()
    assert reported is conn
    assert mask == EVENT_READ | EVENT_WRITE


def test_poll_statistics(env, make_connection):
    selector = Selector(env)
    c1, c2 = make_connection(), make_connection()
    selector.register(c1, EVENT_READ)
    selector.register(c2, EVENT_READ)
    send(env, c1)
    send(env, c2)
    env.run()
    poll = selector.poll()
    assert poll.triggered
    assert selector.polls == 1
    assert selector.events_returned == 2


def test_level_triggered_redelivery(env, make_connection):
    """An unread request keeps the connection ready on every poll."""
    selector = Selector(env)
    conn = make_connection()
    selector.register(conn, EVENT_READ)
    send(env, conn)
    env.run()
    assert selector.poll().triggered
    assert selector.poll().triggered  # still readable, still returned
