"""Congestion-window behaviour: slow start, idle reset, autotuning."""

import pytest

from repro.calibration import default_calibration
from repro.net.link import Link
from repro.net.messages import Request
from repro.net.tcp import IDLE_RESET_THRESHOLD, Connection
from repro.sim.core import Environment


def test_initial_cwnd_is_ten_segments(make_connection, calib):
    conn = make_connection()
    assert conn.cwnd == calib.initial_cwnd_segments * calib.mss


def test_cwnd_grows_with_acks(env, make_connection, calib):
    conn = make_connection()
    initial = conn.cwnd
    conn.open_transfer(64 * 1024)

    def writer(env):
        remaining = 64 * 1024
        while remaining:
            n = conn.try_write(remaining)
            remaining -= n
            if remaining and n == 0:
                yield conn.wait_writable()

    env.process(writer(env))
    env.run()
    assert conn.cwnd > initial


def test_idle_resets_cwnd(env, make_connection, calib):
    conn = make_connection()
    conn.open_transfer(32 * 1024)

    def writer(env):
        remaining = 32 * 1024
        while remaining:
            n = conn.try_write(remaining)
            remaining -= n
            if remaining and n == 0:
                yield conn.wait_writable()
        grown = conn.cwnd
        yield env.timeout(IDLE_RESET_THRESHOLD * 2)
        conn.open_transfer(1000)
        conn.try_write(1000)
        assert conn.cwnd <= grown
        assert conn.stats.idle_resets == 1

    process = env.process(writer(env))
    env.run(process)


def test_no_idle_reset_for_back_to_back_sends(env, make_connection):
    conn = make_connection()
    conn.open_transfer(1000)
    conn.try_write(1000)
    conn.open_transfer(1000)
    conn.try_write(1000)
    assert conn.stats.idle_resets == 0


def test_autotune_grows_buffer_with_cwnd(env, calib):
    link = Link.lan(calib)
    conn = Connection(env, link, calib, autotune=True)
    initial_capacity = conn.buffer.capacity
    size = 256 * 1024
    conn.open_transfer(size)

    def writer(env):
        remaining = size
        while remaining:
            n = conn.try_write(remaining)
            remaining -= n
            if remaining and n == 0:
                yield conn.wait_writable()

    env.process(writer(env))
    env.run()
    assert conn.buffer.capacity > initial_capacity
    assert conn.buffer.capacity <= calib.tcp_wmem_max


def test_autotune_never_shrinks_capacity(env, calib):
    link = Link.lan(calib)
    conn = Connection(env, link, calib, autotune=True)
    conn.open_transfer(64 * 1024)

    def writer(env):
        remaining = 64 * 1024
        while remaining:
            n = conn.try_write(remaining)
            remaining -= n
            if remaining and n == 0:
                yield conn.wait_writable()
        grown = conn.buffer.capacity
        yield env.timeout(IDLE_RESET_THRESHOLD * 2)
        conn.open_transfer(100)
        conn.try_write(100)
        assert conn.buffer.capacity >= grown

    process = env.process(writer(env))
    env.run(process)


def test_fixed_buffer_ignores_autotune(env, make_connection, calib):
    conn = make_connection(send_buffer_size=123456)
    assert conn.buffer.capacity == 123456
    conn.open_transfer(1000)
    conn.try_write(1000)
    env.run()
    assert conn.buffer.capacity == 123456


def test_request_roundtrip_delivers_to_inbox(env, make_connection):
    conn = make_connection()
    from repro.net.messages import Request

    request = Request(env, "x", 100)
    conn.send_request(request)
    assert not conn.readable
    env.run()
    assert conn.readable
    assert conn.read_request() is request
    assert conn.read_request() is None
    assert conn.stats.requests_received == 1
