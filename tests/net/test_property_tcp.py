"""Property-based tests of the TCP model (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import default_calibration
from repro.net.link import Link
from repro.net.tcp import Connection
from repro.sim.core import Environment


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=200_000), min_size=1, max_size=6),
    buffer_kb=st.integers(min_value=4, max_value=128),
    latency_us=st.integers(min_value=10, max_value=5000),
)
@settings(max_examples=40, deadline=None)
def test_every_byte_written_is_delivered_once(sizes, buffer_kb, latency_us):
    calib = default_calibration()
    env = Environment()
    link = Link(one_way_latency=latency_us * 1e-6, bandwidth=calib.link_bandwidth)
    conn = Connection(env, link, calib, send_buffer_size=buffer_kb * 1024)
    transfers = [conn.open_transfer(size) for size in sizes]

    def writer(env):
        for size in sizes:
            remaining = size
            while remaining:
                n = conn.try_write(remaining)
                remaining -= n
                if remaining and n == 0:
                    yield conn.wait_writable()

    env.process(writer(env))
    env.run()
    assert conn.stats.bytes_delivered == sum(sizes)
    assert all(t.remaining == 0 for t in transfers)
    assert conn.buffer.used == 0
    # FIFO completion order.
    times = [t.completed_at for t in transfers]
    assert times == sorted(times)


@given(
    size=st.integers(min_value=1, max_value=300_000),
    buffer_kb=st.integers(min_value=4, max_value=64),
)
@settings(max_examples=40, deadline=None)
def test_buffer_occupancy_never_exceeds_capacity(size, buffer_kb):
    calib = default_calibration()
    env = Environment()
    conn = Connection(env, Link.lan(calib), calib, send_buffer_size=buffer_kb * 1024)
    conn.open_transfer(size)
    violations = []

    def writer(env):
        remaining = size
        while remaining:
            n = conn.try_write(remaining)
            if conn.buffer.used > conn.buffer.capacity:
                violations.append(conn.buffer.used)
            remaining -= n
            if remaining and n == 0:
                yield conn.wait_writable()

    env.process(writer(env))
    env.run()
    assert not violations


@given(size=st.integers(min_value=1, max_value=150_000))
@settings(max_examples=30, deadline=None)
def test_blocking_write_equals_nonblocking_delivery_total(size):
    """Blocking and non-blocking paths deliver identical byte counts."""
    calib = default_calibration()

    def total_delivered(blocking: bool) -> int:
        from repro.cpu.scheduler import CPU

        env = Environment()
        conn = Connection(env, Link.lan(calib), calib)
        conn.open_transfer(size)
        cpu = CPU(env, calib)
        thread = cpu.thread()

        def writer(env):
            if blocking:
                yield from conn.blocking_write(thread, size)
            else:
                remaining = size
                while remaining:
                    n = conn.try_write(remaining)
                    remaining -= n
                    if remaining and n == 0:
                        yield conn.wait_writable()

        env.process(writer(env))
        env.run()
        return conn.stats.bytes_delivered

    assert total_delivered(True) == total_delivered(False) == size


@given(
    size=st.integers(min_value=20_000, max_value=200_000),
    buffer_kb=st.sampled_from([8, 16, 32]),
)
@settings(max_examples=30, deadline=None)
def test_write_call_count_scales_with_size_over_granularity(size, buffer_kb):
    """Non-blocking writes per response are bounded below by the number of
    ACK-granularity chunks beyond the initial buffer fill."""
    calib = default_calibration()
    env = Environment()
    conn = Connection(env, Link.lan(calib), calib, send_buffer_size=buffer_kb * 1024)
    conn.open_transfer(size)

    def writer(env):
        remaining = size
        while remaining:
            n = conn.try_write(remaining)
            remaining -= n
            if remaining and n == 0:
                yield conn.wait_writable()

    env.process(writer(env))
    env.run()
    overflow = max(0, size - buffer_kb * 1024)
    min_calls = 1 + overflow // (conn.ack_granularity * 4)
    assert conn.stats.write_calls >= min_calls
