"""Write-path semantics: non-blocking spin vs blocking single syscall."""

import pytest

from repro.errors import ConnectionClosedError
from repro.net.messages import Request


def test_try_write_limited_by_buffer(env, make_connection, calib):
    conn = make_connection()
    accepted = conn.try_write(calib.tcp_send_buffer * 4)
    assert accepted == calib.tcp_send_buffer
    assert conn.stats.write_calls == 1
    assert conn.stats.zero_writes == 0


def test_try_write_zero_when_full(env, make_connection, calib):
    conn = make_connection()
    conn.try_write(calib.tcp_send_buffer)
    assert conn.try_write(100) == 0
    assert conn.stats.zero_writes == 1


def test_try_write_counts_per_request(env, make_connection, calib):
    conn = make_connection()
    request = Request(env, "x", 100)
    conn.try_write(calib.tcp_send_buffer, request)
    conn.try_write(100, request)
    assert request.write_calls == 2
    assert request.zero_writes == 1


def test_small_response_single_write(env, cpu, make_connection):
    conn = make_connection()
    request = Request(env, "small", 102)
    transfer = conn.open_transfer(102, request)

    def writer(env):
        written = conn.try_write(102, request)
        assert written == 102
        yield transfer.done

    env.process(writer(env))
    env.run()
    assert request.write_calls == 1
    assert request.completed_at is not None


def test_nonblocking_large_response_spins(env, cpu, make_connection, calib):
    conn = make_connection()
    size = 100 * 1024
    request = Request(env, "big", size)
    transfer = conn.open_transfer(size, request)
    thread = cpu.thread()

    def writer(env):
        remaining = size
        while remaining:
            n = conn.try_write(remaining, request)
            yield thread.syscall(bytes_copied=n)
            remaining -= n
            if remaining and n == 0:
                yield conn.wait_writable()
        yield transfer.done

    env.process(writer(env))
    env.run()
    # Write-spin: roughly response/ack-granularity calls (paper Table IV).
    assert request.write_calls >= 40
    assert conn.stats.bytes_delivered == size


def test_blocking_write_is_single_syscall(env, cpu, make_connection):
    conn = make_connection()
    size = 100 * 1024
    request = Request(env, "big", size)
    transfer = conn.open_transfer(size, request)
    thread = cpu.thread()

    def writer(env):
        yield from conn.blocking_write(thread, size, request)
        yield transfer.done

    env.process(writer(env))
    env.run()
    assert request.write_calls == 1
    assert cpu.counters.syscalls == 1
    assert conn.stats.bytes_delivered == size


def test_blocking_write_returns_before_final_delivery(env, cpu, make_connection, calib):
    """blocking write returns once all bytes are in the kernel buffer; the
    last buffer-full of data is still in flight."""
    conn = make_connection()
    size = 100 * 1024
    thread = cpu.thread()
    returned_at = {}

    def writer(env):
        yield from conn.blocking_write(thread, size)
        returned_at["t"] = env.now

    transfer = conn.open_transfer(size)
    env.process(writer(env))
    env.run(transfer.done)
    assert returned_at["t"] < env.now


def test_open_transfer_zero_bytes_completes_immediately(env, make_connection):
    conn = make_connection()
    transfer = conn.open_transfer(0)
    assert transfer.done.triggered


def test_transfers_complete_in_fifo_order(env, cpu, make_connection):
    conn = make_connection()
    thread = cpu.thread()
    t1 = conn.open_transfer(2000)
    t2 = conn.open_transfer(3000)

    def writer(env):
        yield from conn.blocking_write(thread, 2000)
        yield from conn.blocking_write(thread, 3000)

    env.process(writer(env))
    env.run()
    assert t1.completed_at <= t2.completed_at
    assert t1.delivered == 2000
    assert t2.delivered == 3000


def test_closed_connection_rejects_operations(env, make_connection):
    conn = make_connection()
    conn.close()
    with pytest.raises(ConnectionClosedError):
        conn.try_write(10)
    with pytest.raises(ConnectionClosedError):
        conn.open_transfer(10)
    with pytest.raises(ConnectionClosedError):
        conn.read_request()


def test_negative_transfer_rejected(env, make_connection):
    with pytest.raises(ValueError):
        make_connection().open_transfer(-1)
