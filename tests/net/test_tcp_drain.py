"""Wait-ACK drain dynamics: the mechanism behind Figures 5 and 7."""

import pytest

from repro.calibration import default_calibration
from repro.net.link import Link
from repro.net.messages import Request
from repro.net.tcp import Connection
from repro.sim.core import Environment


def drain_time(one_way_latency, size, send_buffer=None, calib=None):
    """Time for a full transfer of ``size`` bytes written non-blockingly."""
    calib = calib or default_calibration()
    env = Environment()
    link = Link(one_way_latency=one_way_latency, bandwidth=calib.link_bandwidth)
    conn = Connection(env, link, calib, send_buffer_size=send_buffer)
    transfer = conn.open_transfer(size)

    def writer(env):
        remaining = size
        while remaining:
            n = conn.try_write(remaining)
            remaining -= n
            if remaining and n == 0:
                yield conn.wait_writable()
        yield transfer.done

    env.process(writer(env))
    env.run()
    return env.now


def test_latency_amplifies_transfer_time_with_small_buffer():
    """With a 16KB buffer, a 100KB transfer needs multiple wait-ACK rounds,
    so its duration scales with the RTT (the Figure 7 amplification)."""
    fast = drain_time(75e-6, 100 * 1024)
    slow = drain_time(5e-3, 100 * 1024)
    assert slow > 10 * fast


def test_large_buffer_removes_latency_amplification():
    """With the buffer >= response size, the transfer takes ~1 RTT plus
    serialization regardless of buffer-induced rounds."""
    calib = default_calibration()
    slow = drain_time(5e-3, 100 * 1024, send_buffer=100 * 1024)
    serialization = 100 * 1024 / calib.link_bandwidth
    # one-way propagation + serialization, plus a handful of ACK waits for
    # cwnd growth (slow start from 10 segments needs ~3 window rounds).
    assert slow < 4 * (2 * 5e-3) + serialization + 1e-3


def test_transfer_time_lower_bound_is_wire_time():
    calib = default_calibration()
    size = 64 * 1024
    elapsed = drain_time(75e-6, size, send_buffer=size)
    assert elapsed >= size / calib.link_bandwidth


def test_bytes_conserved_exactly(env, make_connection):
    conn = make_connection()
    sizes = [100, 5000, 33333]
    transfers = [conn.open_transfer(s) for s in sizes]

    def writer(env):
        for size, transfer in zip(sizes, transfers):
            remaining = size
            while remaining:
                n = conn.try_write(remaining)
                remaining -= n
                if remaining and n == 0:
                    yield conn.wait_writable()
        yield transfers[-1].done

    env.process(writer(env))
    env.run()
    assert conn.stats.bytes_written == sum(sizes)
    assert conn.stats.bytes_delivered == sum(sizes)
    assert all(t.remaining == 0 for t in transfers)
    assert conn.buffer.is_empty


def test_acks_free_buffer_progressively(env, make_connection, calib):
    conn = make_connection()
    conn.open_transfer(calib.tcp_send_buffer)
    conn.try_write(calib.tcp_send_buffer)
    assert conn.buffer.free == 0
    env.run()
    assert conn.buffer.free == calib.tcp_send_buffer
    assert conn.stats.acks_received >= calib.tcp_send_buffer // conn.ack_granularity
