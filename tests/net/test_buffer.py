"""Send-buffer byte accounting and waiter notification."""

import pytest

from repro.errors import BufferError_
from repro.net.buffer import SendBuffer


def test_capacity_validation():
    with pytest.raises(ValueError):
        SendBuffer(0)


def test_reserve_accepts_up_to_free():
    buffer = SendBuffer(100)
    assert buffer.reserve(60) == 60
    assert buffer.reserve(60) == 40
    assert buffer.reserve(60) == 0
    assert buffer.used == 100
    assert buffer.free == 0


def test_reserve_negative_rejected():
    with pytest.raises(BufferError_):
        SendBuffer(10).reserve(-1)


def test_release_frees_space():
    buffer = SendBuffer(100)
    buffer.reserve(100)
    buffer.release(30)
    assert buffer.free == 30
    assert buffer.used == 70


def test_release_more_than_used_rejected():
    buffer = SendBuffer(100)
    buffer.reserve(10)
    with pytest.raises(BufferError_):
        buffer.release(20)


def test_space_waiter_fires_immediately_when_free():
    buffer = SendBuffer(100)
    fired = []
    buffer.add_space_waiter(lambda: fired.append(1))
    assert fired == [1]


def test_space_waiter_deferred_until_release():
    buffer = SendBuffer(100)
    buffer.reserve(100)
    fired = []
    buffer.add_space_waiter(lambda: fired.append(1))
    assert fired == []
    buffer.release(1)
    assert fired == [1]


def test_space_waiters_are_one_shot():
    buffer = SendBuffer(100)
    buffer.reserve(100)
    fired = []
    buffer.add_space_waiter(lambda: fired.append(1))
    buffer.release(10)
    buffer.release(10)
    assert fired == [1]


def test_capacity_growth_wakes_waiters():
    buffer = SendBuffer(100)
    buffer.reserve(100)
    fired = []
    buffer.add_space_waiter(lambda: fired.append(1))
    buffer.capacity = 200
    assert fired == [1]
    assert buffer.free == 100


def test_capacity_shrink_below_used_is_overcommit():
    buffer = SendBuffer(100)
    buffer.reserve(80)
    buffer.capacity = 50
    assert buffer.free == 0
    assert buffer.used == 80
    assert buffer.reserve(10) == 0
    buffer.release(40)
    assert buffer.free == 10


def test_is_empty():
    buffer = SendBuffer(10)
    assert buffer.is_empty
    buffer.reserve(1)
    assert not buffer.is_empty


def test_close_wakes_pending_waiters():
    buffer = SendBuffer(100)
    buffer.reserve(100)
    fired = []
    buffer.add_space_waiter(lambda: fired.append(1))
    assert fired == []
    buffer.close()
    assert buffer.closed
    assert fired == [1]


def test_waiter_added_after_close_fires_immediately():
    # Regression: a closed connection's buffer never drains, so a waiter
    # registered after close would otherwise park forever.
    buffer = SendBuffer(100)
    buffer.reserve(100)  # full: the non-closed path would defer
    buffer.close()
    fired = []
    buffer.add_space_waiter(lambda: fired.append(1))
    assert fired == [1]


def test_close_is_idempotent():
    buffer = SendBuffer(100)
    buffer.close()
    buffer.close()
    assert buffer.closed
