"""Regression tests: closing a connection wakes every parked writer.

Before the fix, ``Connection.close()`` only woke waiters that were already
registered; any writer that blocked *after* the close (or re-registered
while unwinding) parked on a buffer that would never drain again and its
thread leaked for the rest of the run.
"""

import pytest

from repro.errors import ConnectionClosedError


def test_blocked_writer_wakes_with_connection_closed(env, cpu, make_connection):
    conn = make_connection(send_buffer_size=1000)
    thread = cpu.thread("writer")
    outcome = []

    def writer():
        try:
            # Far larger than buffer + cwnd: the writer must block.
            yield from conn.blocking_write(thread, 10_000_000)
            outcome.append("completed")
        except ConnectionClosedError:
            outcome.append("closed")

    env.process(writer())
    env.run(until=0.001)
    assert outcome == []  # parked, mid-write
    conn.close()
    env.run(until=0.002)
    assert outcome == ["closed"]


def test_wait_writable_after_close_fires_immediately(env, make_connection):
    conn = make_connection(send_buffer_size=1000)
    conn.try_write(1000)  # fill the buffer
    conn.close()
    event = conn.wait_writable()
    env.run(until=0.001)
    assert event.triggered


def test_space_waiter_registered_after_close_fires(env, make_connection):
    # The selector registers write-watchers through the buffer; one that
    # arrives after the close must still be called back (it then observes
    # ``connection.closed`` and drops the connection).
    conn = make_connection(send_buffer_size=1000)
    conn.try_write(1000)
    conn.close()
    fired = []
    conn.buffer.add_space_waiter(lambda: fired.append(1))
    assert fired == [1]


def test_on_close_event_fires_exactly_once(env, make_connection):
    conn = make_connection()
    assert not conn.on_close.triggered
    conn.close()
    conn.close()  # idempotent
    env.run(until=0.001)
    assert conn.on_close.triggered


def test_write_to_closed_connection_raises(env, cpu, make_connection):
    conn = make_connection()
    conn.close()
    with pytest.raises(ConnectionClosedError):
        conn.try_write(100)
    thread = cpu.thread("writer")
    with pytest.raises(ConnectionClosedError):
        next(conn.blocking_write(thread, 100))
