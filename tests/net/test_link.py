"""Link latency/bandwidth model."""

import pytest

from repro.calibration import default_calibration
from repro.net.link import Link


def test_validation():
    with pytest.raises(ValueError):
        Link(one_way_latency=-1)
    with pytest.raises(ValueError):
        Link(bandwidth=0)


def test_serialization_delay():
    link = Link(one_way_latency=0.0, bandwidth=1e6)
    assert link.serialization_delay(1_000_000) == pytest.approx(1.0)


def test_transfer_delay_combines_latency_and_serialization():
    link = Link(one_way_latency=0.01, bandwidth=1e6)
    assert link.transfer_delay(500_000) == pytest.approx(0.01 + 0.5)


def test_rtt_is_twice_one_way():
    link = Link(one_way_latency=0.005)
    assert link.rtt == pytest.approx(0.010)


def test_lan_factory_adds_injected_latency():
    calib = default_calibration()
    plain = Link.lan(calib)
    delayed = Link.lan(calib, added_latency=5e-3)
    assert delayed.one_way_latency == pytest.approx(plain.one_way_latency + 5e-3)
    assert delayed.bandwidth == plain.bandwidth
