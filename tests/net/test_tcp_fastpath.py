"""Flow-level TCP fast-path equivalence and teardown tests.

The fast path in :mod:`repro.net.tcp` collapses uncontended ACK-round
drains into closed-form plan entries plus a handful of boundary events.
Its contract is *bit-identical observables*: every ``TCPStats`` counter,
timestamp and completion ordering must match the per-segment path exactly.

Everything here is marked ``tcpfast``: running the marker with the
kill-switch flipped (``REPRO_TCP_FASTPATH=0 pytest -m tcpfast``) executes
the same assertions on the per-segment path, which bisects any future
digest mismatch to this layer in one run.
"""

from __future__ import annotations

import pytest

from repro.calibration import DEFAULT_CALIBRATION
from repro.net.link import Link
from repro.net.tcp import Connection, TCPStats
from repro.sim import core as core_module
from repro.sim.core import Environment

pytestmark = pytest.mark.tcpfast

#: Table IV's worst-case response: 100 KB through the 16 KB default buffer.
SIZE_100KB = 100_000


def _stats_dict(stats: TCPStats) -> dict:
    return {name: getattr(stats, name) for name in TCPStats.__slots__}


def _spin_response(added_latency: float) -> "tuple[float, dict]":
    """One non-blocking 100 KB response; returns (end time, stats)."""
    env = Environment()
    link = Link.lan(DEFAULT_CALIBRATION, added_latency=added_latency)
    conn = Connection(env, link)

    def writer(env: Environment):
        transfer = conn.open_transfer(SIZE_100KB)
        remaining = SIZE_100KB
        while remaining > 0:
            accepted = conn.try_write(remaining)
            remaining -= accepted
            if remaining > 0:
                yield conn.wait_writable()
        yield transfer.done

    proc = env.process(writer(env))
    env.run(until=proc)
    return env.now, _stats_dict(conn.stats)


@pytest.mark.parametrize("added_latency", [0.0, 0.005], ids=["rtt0", "rtt5ms"])
def test_table_iv_write_spin_identical_on_both_paths(monkeypatch, added_latency):
    """Table IV regression: the write-spin count survives the fast path.

    The paper reports ~102 ``write()`` calls to push 100 KB through a
    16 KB buffer (Table IV, SingleT-Async); our calibration reproduces the
    same order of magnitude (~85 — see EXPERIMENTS.md).  Both paths must
    report the *same* spin count and byte-identical stats, because every
    per-ACK wake-up is itself a counted syscall the fast path may not
    batch away.
    """
    monkeypatch.setenv("REPRO_TCP_FASTPATH", "1")
    end_fast, fast = _spin_response(added_latency)
    monkeypatch.setenv("REPRO_TCP_FASTPATH", "0")
    end_slow, slow = _spin_response(added_latency)
    assert fast == slow
    assert end_fast == end_slow
    assert 60 <= fast["write_calls"] <= 120
    assert fast["bytes_delivered"] == SIZE_100KB
    assert fast["responses_completed"] == 1


def test_micro_run_identical_with_fastpath_off(monkeypatch):
    """Full-stack equivalence: a write-spin micro run is bit-identical.

    Cheaper tier-1 cousin of the golden-digest matrix: one SingleT-Async
    run with 100 KB responses (the write-spin configuration), compared
    field-for-field between the two paths.
    """
    import dataclasses

    from repro.experiments.micro import MicroConfig, run_micro

    def run():
        config = MicroConfig(
            "SingleT-Async", 8, response_size=102_400, duration=0.3, warmup=0.1
        )
        return run_micro(config)

    monkeypatch.setenv("REPRO_TCP_FASTPATH", "1")
    fast = run()
    monkeypatch.setenv("REPRO_TCP_FASTPATH", "0")
    slow = run()
    assert dataclasses.asdict(fast.report) == dataclasses.asdict(slow.report)
    assert sorted(fast.server_stats.items()) == sorted(slow.server_stats.items())
    assert sorted(fast.client_stats.items()) == sorted(slow.client_stats.items())


def test_close_mid_drain_heap_bounded_across_10k_connections():
    """close() during an analytic drain tombstones its boundary events.

    Mirrors the PR 3 interrupt-storm heap test: 10k connections each
    closed mid-plan (deliveries applied, ACKs and the settle/completion
    events still pending) must not leave one dead heap entry per close —
    lazy cancellation plus compaction keeps the heap at O(live).
    """
    env = Environment()
    iterations = 10_000
    peak = 0

    def churner(env: Environment):
        nonlocal peak
        for _ in range(iterations):
            conn = Connection(env, Link.lan(DEFAULT_CALIBRATION))
            conn.open_transfer(16_384)
            conn.try_write(16_384)
            # Two thirds into the drain: some ACKs applied, the rest of the
            # plan (final ACKs, completion boundary, settle) still queued.
            yield env.timeout(2.0e-4)
            conn.close()
            if len(env._queue) > peak:
                peak = len(env._queue)

    proc = env.process(churner(env))
    env.run(until=proc)
    assert peak < 4 * core_module._COMPACT_MIN
    assert env._cancelled_entries <= len(env._queue)


def test_close_mid_drain_stats_identical_on_both_paths(monkeypatch):
    """Stats at the moment of a mid-drain close match the segment path."""

    def run():
        env = Environment()
        conn = Connection(env, Link.lan(DEFAULT_CALIBRATION))
        conn.open_transfer(16_384)
        conn.try_write(16_384)
        env.run(until=env.timeout(2.0e-4))
        conn.close()
        snapshot = _stats_dict(conn.stats)
        env.run()  # drain any straggler events; none may resurrect state
        return snapshot, _stats_dict(conn.stats)

    monkeypatch.setenv("REPRO_TCP_FASTPATH", "1")
    fast_mid, fast_end = run()
    monkeypatch.setenv("REPRO_TCP_FASTPATH", "0")
    slow_mid, slow_end = run()
    assert fast_mid == slow_mid
    assert fast_end == slow_end
