"""Request message lifecycle."""

import pytest

from repro.net.messages import Request


def test_validation(env):
    with pytest.raises(ValueError):
        Request(env, "x", response_size=-1)
    with pytest.raises(ValueError):
        Request(env, "x", response_size=10, request_size=0)


def test_created_at_stamped(env):
    env.timeout(2)
    env.run()
    request = Request(env, "x", 100)
    assert request.created_at == 2.0


def test_ids_are_unique_and_increasing(env):
    a = Request(env, "x", 1)
    b = Request(env, "x", 1)
    assert b.id > a.id


def test_response_time_none_until_completed(env):
    request = Request(env, "x", 100)
    assert request.response_time is None


def test_mark_completed_sets_time_and_triggers_event(env):
    request = Request(env, "x", 100)
    env.timeout(1.5)
    env.run()
    request.mark_completed()
    assert request.completed_at == 1.5
    assert request.response_time == pytest.approx(1.5)
    assert request.completed.triggered
    assert request.completed.value is request


def test_mark_completed_is_idempotent(env):
    request = Request(env, "x", 100)
    request.mark_completed()
    first = request.completed_at
    env.timeout(1)
    env.run()
    request.mark_completed()
    assert request.completed_at == first


def test_metadata_and_counters_default_empty(env):
    request = Request(env, "x", 100)
    assert request.metadata == {}
    assert request.write_calls == 0
    assert request.zero_writes == 0
