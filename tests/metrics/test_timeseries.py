"""Bucketed time series."""

import pytest

from repro.metrics.timeseries import TimeSeries


def test_bucket_width_validation():
    with pytest.raises(ValueError):
        TimeSeries(0)


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        TimeSeries(1.0).record(-0.1)


def test_records_into_correct_buckets():
    series = TimeSeries(1.0)
    series.record(0.5)
    series.record(1.5)
    series.record(1.7)
    assert series.buckets == [1.0, 2.0]


def test_rates_divide_by_width():
    series = TimeSeries(0.5)
    series.record(0.1)
    series.record(0.2)
    assert series.rates() == [4.0]


def test_rate_between():
    series = TimeSeries(1.0)
    for t in [0.1, 0.2, 1.1, 2.9]:
        series.record(t)
    assert series.rate_between(0.0, 3.0) == pytest.approx(4 / 3)


def test_rate_between_validation():
    with pytest.raises(ValueError):
        TimeSeries(1.0).rate_between(2.0, 1.0)


def test_amount_parameter():
    series = TimeSeries(1.0)
    series.record(0.0, amount=2.5)
    assert series.buckets == [2.5]


def test_len_counts_buckets():
    series = TimeSeries(1.0)
    series.record(4.2)
    assert len(series) == 5
