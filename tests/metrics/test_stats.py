"""Summary statistics and percentile math."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.stats import SummaryStats, percentile


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_percentile_single_value():
    assert percentile([7.0], 0) == 7.0
    assert percentile([7.0], 100) == 7.0


def test_percentile_interpolates():
    values = [0.0, 10.0]
    assert percentile(values, 50) == pytest.approx(5.0)
    assert percentile(values, 25) == pytest.approx(2.5)


def test_percentile_matches_numpy():
    numpy = pytest.importorskip("numpy")
    values = sorted([3.1, 0.4, 9.9, 2.2, 5.5, 7.3, 1.0])
    for q in [0, 10, 33, 50, 77, 95, 100]:
        assert percentile(values, q) == pytest.approx(numpy.percentile(values, q))


def test_summary_basic_moments():
    stats = SummaryStats([1.0, 2.0, 3.0, 4.0])
    assert stats.count == 4
    assert stats.mean == pytest.approx(2.5)
    assert stats.minimum == 1.0
    assert stats.maximum == 4.0
    assert stats.total == pytest.approx(10.0)
    assert stats.stddev == pytest.approx(1.118033988749895)


def test_summary_empty_raises():
    stats = SummaryStats()
    with pytest.raises(ValueError):
        stats.mean
    with pytest.raises(ValueError):
        stats.minimum


def test_summary_percentiles_update_after_add():
    stats = SummaryStats([1.0, 2.0, 3.0])
    assert stats.p50 == 2.0
    stats.add(100.0)
    assert stats.p50 == pytest.approx(2.5)


def test_len_matches_count():
    stats = SummaryStats([1, 2, 3])
    assert len(stats) == 3


@given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_percentile_bounds_and_monotonicity(values):
    stats = SummaryStats(values)
    quantiles = [stats.percentile(q) for q in (10, 50, 90)]
    eps = 1e-9 + 1e-9 * max(abs(v) for v in values)
    assert stats.minimum - eps <= quantiles[0]
    assert quantiles[2] <= stats.maximum + eps
    assert all(a <= b + eps for a, b in zip(quantiles, quantiles[1:]))


@given(values=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100))
@settings(max_examples=40, deadline=None)
def test_mean_within_min_max(values):
    stats = SummaryStats(values)
    assert stats.minimum - 1e-9 <= stats.mean <= stats.maximum + 1e-9
