"""Summary statistics and percentile math."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.stats import SummaryStats, percentile


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_percentile_single_value():
    assert percentile([7.0], 0) == 7.0
    assert percentile([7.0], 100) == 7.0


def test_percentile_interpolates():
    values = [0.0, 10.0]
    assert percentile(values, 50) == pytest.approx(5.0)
    assert percentile(values, 25) == pytest.approx(2.5)


def test_percentile_matches_numpy():
    numpy = pytest.importorskip("numpy")
    values = sorted([3.1, 0.4, 9.9, 2.2, 5.5, 7.3, 1.0])
    for q in [0, 10, 33, 50, 77, 95, 100]:
        assert percentile(values, q) == pytest.approx(numpy.percentile(values, q))


def test_summary_basic_moments():
    stats = SummaryStats([1.0, 2.0, 3.0, 4.0])
    assert stats.count == 4
    assert stats.mean == pytest.approx(2.5)
    assert stats.minimum == 1.0
    assert stats.maximum == 4.0
    assert stats.total == pytest.approx(10.0)
    assert stats.stddev == pytest.approx(1.118033988749895)


def test_summary_empty_raises():
    stats = SummaryStats()
    with pytest.raises(ValueError):
        stats.mean
    with pytest.raises(ValueError):
        stats.minimum


def test_summary_percentiles_update_after_add():
    stats = SummaryStats([1.0, 2.0, 3.0])
    assert stats.p50 == 2.0
    stats.add(100.0)
    assert stats.p50 == pytest.approx(2.5)


def test_len_matches_count():
    stats = SummaryStats([1, 2, 3])
    assert len(stats) == 3


@given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_percentile_bounds_and_monotonicity(values):
    stats = SummaryStats(values)
    quantiles = [stats.percentile(q) for q in (10, 50, 90)]
    eps = 1e-9 + 1e-9 * max(abs(v) for v in values)
    assert stats.minimum - eps <= quantiles[0]
    assert quantiles[2] <= stats.maximum + eps
    assert all(a <= b + eps for a, b in zip(quantiles, quantiles[1:]))


@given(values=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100))
@settings(max_examples=40, deadline=None)
def test_mean_within_min_max(values):
    stats = SummaryStats(values)
    assert stats.minimum - 1e-9 <= stats.mean <= stats.maximum + 1e-9


# ----------------------------------------------------------------------
# Incremental sorted-cache (interleaved add/percentile)
# ----------------------------------------------------------------------
def test_interleaved_add_and_percentile_stays_exact():
    """The sorted-prefix cache must merge new tails, not drop them."""
    import random

    rng = random.Random(42)
    stats = SummaryStats()
    reference = []
    for i in range(500):
        v = rng.uniform(0, 100)
        stats.add(v)
        reference.append(v)
        if i % 7 == 0:
            expected = percentile(sorted(reference), 95)
            assert stats.percentile(95) == pytest.approx(expected)
    expected = percentile(sorted(reference), 50)
    assert stats.percentile(50) == pytest.approx(expected)


def test_large_batch_after_query_resorts():
    stats = SummaryStats([5.0, 1.0])
    assert stats.p50 == 3.0
    for v in range(1000, 0, -1):  # big descending tail forces the sort path
        stats.add(float(v))
    assert stats.minimum == 1.0
    assert stats.percentile(100) == 1000.0
    assert stats.percentile(0) == 1.0


# ----------------------------------------------------------------------
# Streaming (P2) mode
# ----------------------------------------------------------------------
def test_p2_exact_below_five_samples():
    from repro.metrics.stats import P2Quantile

    est = P2Quantile(0.5)
    with pytest.raises(ValueError):
        est.value()
    for v in [9.0, 1.0, 5.0]:
        est.add(v)
    assert est.value() == 5.0


def test_p2_tracks_uniform_quantiles():
    import random

    from repro.metrics.stats import P2Quantile

    rng = random.Random(1234)
    values = [rng.uniform(0, 1) for _ in range(20_000)]
    for p in (0.5, 0.95, 0.99):
        est = P2Quantile(p)
        for v in values:
            est.add(v)
        exact = percentile(sorted(values), p * 100)
        # P2 on 20k uniform samples lands well within a percent or two.
        assert est.value() == pytest.approx(exact, abs=0.02)


def test_streaming_stats_moments_are_exact():
    import random

    from repro.metrics.stats import StreamingStats

    rng = random.Random(7)
    values = [rng.gauss(10, 3) for _ in range(5000)]
    exact = SummaryStats(values)
    streaming = StreamingStats(values)
    assert streaming.count == exact.count
    assert streaming.total == pytest.approx(exact.total)
    assert streaming.mean == pytest.approx(exact.mean)
    assert streaming.minimum == exact.minimum
    assert streaming.maximum == exact.maximum
    assert streaming.stddev == pytest.approx(exact.stddev, rel=1e-9)
    # Percentiles are estimates: close, not exact.
    assert streaming.p50 == pytest.approx(exact.p50, rel=0.05)
    assert streaming.p99 == pytest.approx(exact.p99, rel=0.10)


def test_streaming_stats_fixed_memory():
    from repro.metrics.stats import StreamingStats

    streaming = StreamingStats()
    for i in range(10_000):
        streaming.add(float(i % 97))
    # No raw-sample storage anywhere on the instance.
    assert not any(
        isinstance(v, list) and len(v) > 5 for v in vars(streaming).values()
    )
    assert len(streaming) == 10_000


def test_streaming_stats_untracked_quantile_raises():
    from repro.metrics.stats import StreamingStats

    streaming = StreamingStats([1.0, 2.0])
    with pytest.raises(ValueError, match="not tracked"):
        streaming.percentile(42.0)
    custom = StreamingStats([1.0, 2.0, 3.0], quantiles=(42.0,))
    assert custom.percentile(42.0) >= 1.0


def test_make_stats_factory():
    from repro.metrics.stats import StreamingStats, make_stats

    assert isinstance(make_stats(False), SummaryStats)
    assert isinstance(make_stats(True), StreamingStats)


def test_streaming_recorder_end_to_end():
    """RunRecorder(streaming=True) produces a close-to-exact report."""
    from repro.experiments.micro import MicroConfig, run_micro

    config = MicroConfig("SingleT-Async", 8, duration=0.3, warmup=0.1)
    exact = run_micro(config).report
    streaming = run_micro(config, streaming=True).report
    assert streaming.completed == exact.completed
    assert streaming.throughput == pytest.approx(exact.throughput)
    assert streaming.response_time_mean == pytest.approx(exact.response_time_mean)
    assert streaming.response_time_p50 == pytest.approx(
        exact.response_time_p50, rel=0.15
    )
