"""Request lifecycle tracing."""

import pytest

from repro.metrics.tracing import RequestTracer
from repro.net.messages import Request


def test_mark_and_retrieve(env):
    tracer = RequestTracer(env)
    request = Request(env, "x", 100)
    tracer.mark(request, "created")
    env.timeout(1.0)
    env.run()
    tracer.mark(request, "served", detail="worker-3")
    trace = tracer.trace(request)
    assert trace.names() == ["created", "served"]
    assert trace.at("served") == 1.0
    assert trace.events[1].detail == "worker-3"


def test_unknown_request_raises(env):
    tracer = RequestTracer(env)
    with pytest.raises(KeyError):
        tracer.trace(Request(env, "x", 1))


def test_duration_between_milestones(env):
    tracer = RequestTracer(env)
    request = Request(env, "x", 100)
    tracer.mark(request, "a")
    env.timeout(2.5)
    env.run()
    tracer.mark(request, "b")
    assert tracer.trace(request).duration("a", "b") == pytest.approx(2.5)
    with pytest.raises(KeyError):
        tracer.trace(request).duration("a", "missing")


def test_is_ordered(env):
    tracer = RequestTracer(env)
    request = Request(env, "x", 100)
    for name in ["read", "compute", "write", "done"]:
        tracer.mark(request, name)
    trace = tracer.trace(request)
    assert trace.is_ordered("read", "write")
    assert trace.is_ordered("read", "compute", "write", "done")
    assert not trace.is_ordered("write", "read")
    assert not trace.is_ordered("read", "nope")


def test_watch_auto_marks_completion(env):
    tracer = RequestTracer(env)
    request = Request(env, "x", 100)
    tracer.watch(request)
    env.timeout(3.0)
    env.run()
    request.mark_completed()
    env.run()
    trace = tracer.trace(request)
    assert trace.is_ordered("created", "completed")
    assert trace.at("completed") == 3.0


def test_all_traces_ordered_by_request_id(env):
    tracer = RequestTracer(env)
    requests = [Request(env, "x", 1) for _ in range(3)]
    for request in reversed(requests):
        tracer.mark(request, "seen")
    ids = [t.request_id for t in tracer.all_traces()]
    assert ids == sorted(ids)
    assert len(tracer) == 3
