"""Queueing-law helpers, and the simulator's self-consistency with them."""

import pytest

from repro.metrics.queueing import (
    littles_law_concurrency,
    littles_law_residual,
    saturation_knee,
    utilization_law_demand,
)


def test_littles_law_concurrency():
    assert littles_law_concurrency(100.0, 0.5) == pytest.approx(50.0)
    assert littles_law_concurrency(100.0, 0.5, think_time=0.5) == pytest.approx(100.0)


def test_littles_law_validation():
    with pytest.raises(ValueError):
        littles_law_concurrency(-1, 0.1)
    with pytest.raises(ValueError):
        littles_law_residual(0, 1, 1)


def test_residual_zero_for_consistent_measurement():
    assert littles_law_residual(50, 100.0, 0.5) == pytest.approx(0.0)


def test_utilization_law():
    assert utilization_law_demand(500.0, 1.0) == pytest.approx(2e-3)
    assert utilization_law_demand(500.0, 0.5, cores=2) == pytest.approx(2e-3)
    with pytest.raises(ValueError):
        utilization_law_demand(0, 0.5)
    with pytest.raises(ValueError):
        utilization_law_demand(10, 1.5)


def test_saturation_knee_finds_plateau_start():
    workloads = [1, 2, 3, 4, 5]
    throughputs = [10, 20, 29.5, 30, 30]
    knee, tput = saturation_knee(workloads, throughputs)
    assert knee == 3  # 29.5 >= 0.97 * 30 = 29.1
    assert tput == 29.5


def test_saturation_knee_validation():
    with pytest.raises(ValueError):
        saturation_knee([], [])
    with pytest.raises(ValueError):
        saturation_knee([1], [1, 2])
    with pytest.raises(ValueError):
        saturation_knee([1], [1], plateau_fraction=0)


def test_simulator_respects_littles_law():
    """Closed-loop measurement self-consistency: N ~= X * R."""
    from repro.experiments.micro import MicroConfig
    from repro.experiments.parallel import cached_micro

    result = cached_micro(
        MicroConfig(server="sTomcat-Sync", concurrency=32, response_size=102,
                    duration=2.0, warmup=0.6),
        label="queueing",
    )
    residual = littles_law_residual(
        32, result.throughput, result.report.response_time_mean
    )
    assert residual < 0.10


def test_utilization_law_matches_simulator():
    """Demand from the utilisation law matches demand from throughput."""
    from repro.experiments.micro import MicroConfig
    from repro.experiments.parallel import cached_micro

    result = cached_micro(
        MicroConfig(server="SingleT-Async", concurrency=32, response_size=102,
                    duration=2.0, warmup=0.6),
        label="queueing",
    )
    usage = result.report.cpu
    demand = utilization_law_demand(result.throughput, usage.utilization)
    # Per-request demand should be tens of microseconds for 0.1KB.
    assert 15e-6 < demand < 80e-6
