"""Run recorder: warm-up trimming and report derivation."""

import math

import pytest

from repro.cpu.scheduler import CPU
from repro.metrics.collector import RunRecorder
from repro.net.messages import Request


def completed_request(env, kind="x", size=100, rt=0.01, writes=1, zeros=0):
    request = Request(env, kind, size)
    request.write_calls = writes
    request.zero_writes = zeros
    request.completed_at = env.now + rt
    request.created_at = env.now
    return request


def test_warmup_requests_ignored(env):
    recorder = RunRecorder(env, warmup=1.0)
    recorder.record(completed_request(env))
    env.timeout(2.0)
    env.run()
    recorder.record(completed_request(env))
    report = recorder.report()
    assert report.completed == 1
    assert recorder.total_seen == 2


def test_negative_warmup_rejected(env):
    with pytest.raises(ValueError):
        RunRecorder(env, warmup=-1)


def test_throughput_over_measurement_window(env):
    recorder = RunRecorder(env, warmup=1.0)
    env.timeout(1.0)
    env.run()
    for _ in range(10):
        recorder.record(completed_request(env))
    env.timeout(1.0)
    env.run()  # now = 2.0; window = 1s
    report = recorder.report()
    assert report.throughput == pytest.approx(10.0)


def test_response_time_statistics(env):
    recorder = RunRecorder(env, warmup=0.0)
    for rt in [0.01, 0.02, 0.03]:
        recorder.record(completed_request(env, rt=rt))
    env.timeout(1.0)
    env.run()
    report = recorder.report()
    assert report.response_time_mean == pytest.approx(0.02)
    assert report.response_time_p50 == pytest.approx(0.02)


def test_write_counters_averaged(env):
    recorder = RunRecorder(env, warmup=0.0)
    recorder.record(completed_request(env, writes=1))
    recorder.record(completed_request(env, writes=101, zeros=50))
    env.timeout(1.0)
    env.run()
    report = recorder.report()
    assert report.write_calls_per_request == pytest.approx(51.0)
    assert report.zero_writes_per_request == pytest.approx(25.0)


def test_per_kind_breakdown(env):
    recorder = RunRecorder(env, warmup=0.0)
    recorder.record(completed_request(env, kind="light", rt=0.01))
    recorder.record(completed_request(env, kind="heavy", rt=0.10))
    env.timeout(2.0)
    env.run()
    report = recorder.report()
    assert set(report.per_kind_throughput) == {"light", "heavy"}
    assert report.per_kind_response_time["heavy"] == pytest.approx(0.10)


def test_empty_report_has_nan_latencies(env):
    recorder = RunRecorder(env, warmup=0.0)
    env.timeout(1.0)
    env.run()
    report = recorder.report()
    assert report.completed == 0
    assert report.throughput == 0.0
    assert math.isnan(report.response_time_mean)


def test_cpu_window_matches_measurement(env, calib):
    cpu = CPU(env, calib)
    recorder = RunRecorder(env, warmup=1.0)
    recorder.watch_cpu(cpu)
    thread = cpu.thread()

    def worker(env, thread):
        yield env.timeout(1.0)  # warm-up: idle
        yield thread.run(0.5)

    env.process(worker(env, thread))
    env.timeout(2.0)
    env.run()
    recorder.record(completed_request(env))  # trips the warmup boundary
    report = recorder.report()
    assert report.cpu is not None
    assert report.cpu.user_time == pytest.approx(0.5)


def test_context_switch_rate_zero_without_cpu(env):
    recorder = RunRecorder(env, warmup=0.0)
    env.timeout(1.0)
    env.run()
    assert recorder.report().context_switch_rate == 0.0
