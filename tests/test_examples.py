"""The example scripts stay importable and runnable.

Full example runs take minutes (they are demos, not tests); here we
compile each script, check its interface, and exercise the cheapest one
end-to-end.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[1] / "examples").glob("*.py")
)


def test_at_least_five_examples_exist():
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_main_guard_and_docstring(path):
    text = path.read_text()
    assert '__name__ == "__main__"' in text
    assert text.lstrip().startswith(("#!/usr/bin/env python", '"""'))
    assert '"""' in text  # module docstring


def test_write_spin_demo_runs_end_to_end():
    path = next(p for p in EXAMPLES if p.name == "write_spin_demo.py")
    proc = subprocess.run(
        [sys.executable, str(path)], capture_output=True, text=True, timeout=120
    )
    assert proc.returncode == 0, proc.stderr
    assert "write() calls total" in proc.stdout
    assert "Blocking write" in proc.stdout
