"""SEDA-style staged server (extension)."""

import pytest

from repro.net.messages import Request
from repro.servers.staged import StagedServer


def serve(env, cpu, make_connection, n=1, size=100, **kwargs):
    server = StagedServer(env, cpu, **kwargs)
    conn = make_connection()
    server.attach(conn)
    requests = []
    for _ in range(n):
        request = Request(env, "x", size)
        conn.send_request(request)
        env.run(request.completed)
        requests.append(request)
    return server, conn, requests


def test_stage_workers_validation(env, cpu):
    with pytest.raises(ValueError):
        StagedServer(env, cpu, stage_workers=0)


def test_serves_requests_through_all_stages(env, cpu, make_connection):
    server, _conn, requests = serve(env, cpu, make_connection, n=3)
    assert all(r.completed_at is not None for r in requests)
    assert server.stats.requests_completed == 3


def test_three_handoffs_per_request(env, cpu, make_connection):
    server, _conn, _ = serve(env, cpu, make_connection, n=4)
    # reactor->read, read->compute, compute->write per request.
    assert server.stage_handoffs == 3 * 4


def test_more_switches_than_reactor_fix(env, cpu, make_connection):
    """The staged design crosses more thread boundaries than the merged
    reactor design (the ablD ordering)."""
    from repro.calibration import default_calibration
    from repro.cpu.scheduler import CPU
    from repro.net.link import Link
    from repro.net.tcp import Connection
    from repro.servers.reactor import ReactorFixServer
    from repro.sim.core import Environment

    def switches(server_cls, **kwargs):
        env2 = Environment()
        cpu2 = CPU(env2, default_calibration())
        server = server_cls(env2, cpu2, **kwargs)
        conn = Connection(env2, Link.lan(default_calibration()), default_calibration())
        server.attach(conn)
        warm = Request(env2, "w", 100)
        conn.send_request(warm)
        env2.run(warm.completed)
        before = cpu2.counters.context_switches
        for _ in range(10):
            request = Request(env2, "x", 100)
            conn.send_request(request)
            env2.run(request.completed)
        return (cpu2.counters.context_switches - before) / 10

    assert switches(StagedServer, stage_workers=2) > switches(ReactorFixServer, workers=2)


def test_large_responses_complete(env, cpu, make_connection):
    _, _, requests = serve(env, cpu, make_connection, size=100 * 1024)
    assert requests[0].completed_at is not None
    assert requests[0].write_calls > 10  # inherits the naive spin


def test_stages_share_connection_fairly(env, cpu, make_connection):
    server = StagedServer(env, cpu, stage_workers=2)
    connections = [make_connection() for _ in range(4)]
    for conn in connections:
        server.attach(conn)
    requests = []
    for conn in connections:
        request = Request(env, "x", 500)
        conn.send_request(request)
        requests.append(request)
    env.run(env.all_of([r.completed for r in requests]))
    assert all(r.completed_at is not None for r in requests)
