"""Single-threaded server specifics."""

import pytest

from repro.net.messages import Request
from repro.servers.singlet import SingleThreadedServer


def test_exactly_one_thread(env, cpu, make_connection):
    before = cpu.live_threads
    SingleThreadedServer(env, cpu)
    assert cpu.live_threads == before + 1


def test_poll_batches_multiple_ready_connections(env, cpu, make_connection):
    server = SingleThreadedServer(env, cpu)
    connections = [make_connection() for _ in range(5)]
    for conn in connections:
        server.attach(conn)
    requests = []
    for conn in connections:
        request = Request(env, "x", 100)
        conn.send_request(request)
        requests.append(request)
    env.run(env.all_of([r.completed for r in requests]))
    # Fewer polls than requests: readiness was batched.
    assert server.selector.polls <= len(requests)
    assert server.selector.events_returned >= len(requests)


def test_requests_on_one_connection_served_in_order(env, cpu, make_connection):
    server = SingleThreadedServer(env, cpu)
    conn = make_connection()
    server.attach(conn)
    requests = [Request(env, f"r{i}", 1000) for i in range(4)]
    for request in requests:
        conn.send_request(request)
    env.run(env.all_of([r.completed for r in requests]))
    completions = [r.completed_at for r in requests]
    assert completions == sorted(completions)


def test_no_worker_pool_attribute(env, cpu):
    server = SingleThreadedServer(env, cpu)
    assert not hasattr(server, "workers")


def test_service_start_follows_arrival(env, cpu, make_connection):
    server = SingleThreadedServer(env, cpu)
    conn = make_connection()
    server.attach(conn)
    request = Request(env, "x", 100)
    conn.send_request(request)
    env.run(request.completed)
    assert request.service_started_at >= request.created_at
    assert request.completed_at >= request.service_started_at
