"""The Figure 3 event processing flow and its context-switch signature."""

import pytest

from repro.net.messages import Request
from repro.servers.reactor import ReactorFixServer, ReactorServer
from repro.servers.singlet import SingleThreadedServer
from repro.servers.threaded import ThreadedServer


def switches_per_request(env, cpu, make_connection, server_cls, n_requests=20, **kwargs):
    """Average context switches per request at concurrency 1 (the paper's
    Table II counting: one request's flow at a time)."""
    server = server_cls(env, cpu, **kwargs)
    conn = make_connection()
    server.attach(conn)
    # Warm one request through so thread start-up switches are excluded.
    warm = Request(env, "w", 100)
    conn.send_request(warm)
    env.run(warm.completed)
    before = cpu.counters.context_switches
    for _ in range(n_requests):
        request = Request(env, "x", 100)
        conn.send_request(request)
        env.run(request.completed)
    return (cpu.counters.context_switches - before) / n_requests


def test_reactor_four_switches_per_request(env, cpu, make_connection):
    """Figure 3: reactor->worker (read), worker->reactor (write event),
    reactor->worker (write), worker->reactor (done) = 4."""
    measured = switches_per_request(env, cpu, make_connection, ReactorServer, workers=4)
    assert 3.5 <= measured <= 5.5


def test_reactor_fix_two_switches_per_request(env, cpu, make_connection):
    """Merging read+write handling removes two of the four switches."""
    measured = switches_per_request(env, cpu, make_connection, ReactorFixServer, workers=4)
    assert 1.5 <= measured <= 3.5


def test_single_threaded_zero_switches(env, cpu, make_connection):
    measured = switches_per_request(env, cpu, make_connection, SingleThreadedServer)
    assert measured <= 0.2


def test_threaded_about_one_switch_per_request(env, cpu, make_connection):
    """The dedicated worker thread blocks once per request (read wait);
    the paper counts this as 0 *user-space* switches."""
    measured = switches_per_request(env, cpu, make_connection, ThreadedServer)
    assert measured <= 2.0


def test_fix_strictly_cheaper_than_plain_reactor(env, cpu, make_connection):
    from repro.sim.core import Environment
    from repro.cpu.scheduler import CPU
    from repro.calibration import default_calibration

    def run(server_cls):
        env2 = Environment()
        cpu2 = CPU(env2, default_calibration())
        from repro.net.link import Link
        from repro.net.tcp import Connection

        def make(**kwargs):
            return Connection(env2, Link.lan(default_calibration()), default_calibration())

        return switches_per_request(env2, cpu2, make, server_cls, workers=4)

    assert run(ReactorFixServer) < run(ReactorServer)


def test_reactor_workers_validation(env, cpu):
    with pytest.raises(ValueError):
        ReactorServer(env, cpu, workers=0)


def test_reactor_reregisters_connection_after_response(env, cpu, make_connection):
    server = ReactorServer(env, cpu, workers=2)
    conn = make_connection()
    server.attach(conn)
    for _ in range(3):
        request = Request(env, "x", 100)
        conn.send_request(request)
        env.run(request.completed)
    # After the last response the connection must be watched again.
    assert server.selector.registered == 1
