"""Server graceful degradation: load shedding, refusal, abort accounting."""

import pytest

from repro.errors import ServerError
from repro.net.messages import Request
from repro.servers.base import Application, ServerLimits
from repro.servers.threaded import ThreadedServer


class SlowApplication(Application):
    """Holds every admitted request in service for a fixed duration."""

    def __init__(self, duration=0.1):
        self.duration = duration

    def service(self, server, thread, request):
        yield server.env.timeout(self.duration)
        return request.response_size


def test_limits_validation():
    with pytest.raises(ServerError):
        ServerLimits(max_inflight=0)
    with pytest.raises(ServerError):
        ServerLimits(max_connections=0)
    with pytest.raises(ServerError):
        ServerLimits(rejection_size=0)


def test_requests_beyond_max_inflight_are_rejected(env, cpu, make_connection):
    server = ThreadedServer(
        env, cpu, app=SlowApplication(0.1), limits=ServerLimits(max_inflight=2)
    )
    connections = [make_connection() for _ in range(5)]
    requests = []
    for conn in connections:
        server.attach(conn)
        request = Request(env, "x", 10_000)
        conn.send_request(request)
        requests.append(request)
    env.run(until=0.05)  # admitted requests are still inside the slow app
    rejected = [r for r in requests if r.metadata.get("rejected")]
    assert len(rejected) == 3
    assert server.stats.requests_rejected == 3
    # Shed requests were answered immediately with the tiny rejection
    # response; admitted ones are still in service.
    assert all(r.completed_at is not None for r in rejected)
    env.run(until=0.3)
    assert all(r.completed_at is not None for r in requests)
    assert server.stats.requests_completed == 5


def test_admission_slots_are_released(env, cpu, make_connection):
    server = ThreadedServer(
        env, cpu, app=SlowApplication(0.01), limits=ServerLimits(max_inflight=1)
    )
    conn = make_connection()
    server.attach(conn)
    for _ in range(3):  # sequential requests all fit through the one slot
        request = Request(env, "x", 1000)
        conn.send_request(request)
        env.run(request.completed)
    assert server.stats.requests_rejected == 0
    assert server._inflight == 0


def test_connections_beyond_max_are_refused(env, cpu, make_connection):
    server = ThreadedServer(env, cpu, limits=ServerLimits(max_connections=2))
    accepted = [make_connection(), make_connection()]
    for conn in accepted:
        server.attach(conn)
    refused = make_connection()
    server.attach(refused)
    assert refused.closed
    assert not accepted[0].closed
    assert server.stats.connections_refused == 1
    assert len(server.connections) == 2


def test_midservice_disconnect_counts_an_abort(env, cpu, make_connection):
    server = ThreadedServer(
        env, cpu, app=SlowApplication(0.1), limits=ServerLimits(max_inflight=4)
    )
    conn = make_connection()
    server.attach(conn)
    request = Request(env, "x", 10_000)
    conn.send_request(request)
    env.run(until=0.05)  # mid-service
    conn.close()
    env.run(until=0.3)
    assert server.stats.requests_aborted == 1
    assert request.metadata.get("aborted")
    assert request.completed_at is None
    assert server._inflight == 0  # the admission slot was released


def test_no_limits_leaves_requests_unmarked(env, cpu, make_connection):
    server = ThreadedServer(env, cpu)
    conn = make_connection()
    server.attach(conn)
    request = Request(env, "x", 1000)
    conn.send_request(request)
    env.run(request.completed)
    assert "admitted" not in request.metadata
    assert "rejected" not in request.metadata


def test_ncopy_aggregates_degradation_counters(env, cpu):
    from repro.servers.ncopy import NCopyServer

    server = NCopyServer(env, cpu, copies=2)
    stats = server.aggregate_stats()
    assert stats["requests_rejected"] == 0
    assert stats["requests_aborted"] == 0
    assert stats["connections_refused"] == 0
