"""End-to-end serving behaviour common to every architecture."""

import pytest

from repro.core.hybrid import HybridServer
from repro.net.messages import Request
from repro.servers.netty import NettyServer
from repro.servers.reactor import ReactorFixServer, ReactorServer
from repro.servers.singlet import SingleThreadedServer
from repro.servers.threaded import ThreadedServer
from repro.servers.tomcat import TomcatAsyncServer, TomcatSyncServer

ALL_SERVERS = [
    ThreadedServer,
    ReactorServer,
    ReactorFixServer,
    SingleThreadedServer,
    NettyServer,
    HybridServer,
    TomcatSyncServer,
    TomcatAsyncServer,
]


def serve_one(env, cpu, make_connection, server_cls, response_size=1000):
    server = server_cls(env, cpu)
    conn = make_connection()
    server.attach(conn)
    request = Request(env, "x", response_size)
    conn.send_request(request)
    env.run(request.completed)
    return server, request


@pytest.mark.parametrize("server_cls", ALL_SERVERS)
def test_single_request_completes(env, cpu, make_connection, server_cls):
    server, request = serve_one(env, cpu, make_connection, server_cls)
    assert request.completed_at is not None
    assert request.response_time > 0
    assert server.stats.requests_completed == 1


@pytest.mark.parametrize("server_cls", ALL_SERVERS)
def test_large_response_completes(env, cpu, make_connection, server_cls):
    server, request = serve_one(env, cpu, make_connection, server_cls,
                                response_size=100 * 1024)
    assert request.completed_at is not None
    assert server.stats.requests_completed == 1


@pytest.mark.parametrize("server_cls", ALL_SERVERS)
def test_sequential_requests_on_one_connection(env, cpu, make_connection, server_cls):
    server = server_cls(env, cpu)
    conn = make_connection()
    server.attach(conn)
    times = []
    for _ in range(5):
        request = Request(env, "x", 2000)
        conn.send_request(request)
        env.run(request.completed)
        times.append(request.completed_at)
    assert times == sorted(times)
    assert server.stats.requests_completed == 5


@pytest.mark.parametrize("server_cls", ALL_SERVERS)
def test_concurrent_connections_all_served(env, cpu, make_connection, server_cls):
    server = server_cls(env, cpu)
    connections = [make_connection() for _ in range(8)]
    for conn in connections:
        server.attach(conn)
    requests = []
    for conn in connections:
        request = Request(env, "x", 1500)
        conn.send_request(request)
        requests.append(request)
    env.run(env.all_of([r.completed for r in requests]))
    assert all(r.completed_at is not None for r in requests)
    assert server.stats.requests_completed == 8


@pytest.mark.parametrize("server_cls", ALL_SERVERS)
def test_zero_byte_response(env, cpu, make_connection, server_cls):
    server, request = serve_one(env, cpu, make_connection, server_cls, response_size=0)
    assert request.completed_at is not None
