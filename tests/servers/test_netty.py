"""Netty-specific behaviour: bounded writes, jump-out, pipeline (Fig. 8)."""

import pytest

from repro.calibration import default_calibration
from repro.cpu.scheduler import CPU
from repro.net.messages import Request
from repro.net.link import Link
from repro.net.tcp import Connection
from repro.servers.netty import NettyServer
from repro.sim.core import Environment

LARGE = 100 * 1024


def test_workers_validation(env, cpu):
    with pytest.raises(ValueError):
        NettyServer(env, cpu, workers=0)
    with pytest.raises(ValueError):
        NettyServer(env, cpu, spin_threshold=0)


def test_default_spin_threshold_from_calibration(env, cpu, calib):
    server = NettyServer(env, cpu)
    assert server.spin_threshold == calib.netty_write_spin_threshold


def test_jump_out_recorded_on_large_response(env, cpu, make_connection):
    server = NettyServer(env, cpu)
    conn = make_connection()
    server.attach(conn)
    request = Request(env, "x", LARGE)
    conn.send_request(request)
    env.run(request.completed)
    assert server.stats.spin_jumpouts >= 1
    assert request.completed_at is not None


def test_no_jump_out_on_small_response(env, cpu, make_connection):
    server = NettyServer(env, cpu)
    conn = make_connection()
    server.attach(conn)
    request = Request(env, "x", 102)
    conn.send_request(request)
    env.run(request.completed)
    assert server.stats.spin_jumpouts == 0
    assert request.write_calls == 1


def test_spin_threshold_one_jumps_out_every_write(env, cpu, make_connection):
    server = NettyServer(env, cpu, spin_threshold=1)
    conn = make_connection()
    server.attach(conn)
    request = Request(env, "x", LARGE)
    conn.send_request(request)
    env.run(request.completed)
    # Threshold 1: at most one write per visit -> jumpouts ~ write calls.
    assert server.stats.spin_jumpouts >= request.write_calls - 1


def test_pending_write_cleaned_up_after_completion(env, cpu, make_connection):
    server = NettyServer(env, cpu)
    conn = make_connection()
    server.attach(conn)
    request = Request(env, "x", LARGE)
    conn.send_request(request)
    env.run(request.completed)
    assert all(not worker.pending for worker in server._workers)


def test_round_robin_connection_assignment(env, cpu, make_connection):
    server = NettyServer(env, cpu, workers=3)
    for _ in range(7):
        server.attach(make_connection())
    counts = sorted(worker.selector.registered for worker in server._workers)
    assert counts == [2, 2, 3]


def test_multiple_workers_serve_in_parallel(env, calib, make_connection):
    env2 = Environment()
    calib2 = default_calibration(cores=2)
    cpu2 = CPU(env2, calib2)
    server = NettyServer(env2, cpu2, workers=2)
    link = Link.lan(calib2)
    requests = []
    for _ in range(2):
        conn = Connection(env2, link, calib2)
        server.attach(conn)
        request = Request(env2, "x", 50 * 1024)
        conn.send_request(request)
        requests.append(request)
    env2.run(env2.all_of([r.completed for r in requests]))
    assert all(r.completed_at is not None for r in requests)


def test_netty_pays_pipeline_cost(env, make_connection, calib):
    """Per-request user CPU includes the pipeline traversal (part of the
    optimisation overhead of Figure 9b)."""
    from repro.servers.singlet import SingleThreadedServer

    def user_time(server_cls):
        env2 = Environment()
        cpu2 = CPU(env2, default_calibration())
        server = server_cls(env2, cpu2)
        conn = Connection(env2, Link.lan(default_calibration()), default_calibration())
        server.attach(conn)
        request = Request(env2, "x", 102)
        conn.send_request(request)
        env2.run(request.completed)
        return cpu2.counters.busy_user

    assert user_time(NettyServer) > user_time(SingleThreadedServer) + calib.pipeline_cost * 0.9
