"""Figure 5 dynamics: the write-spin and its per-architecture signature."""

import pytest

from repro.net.messages import Request
from repro.servers.netty import NettyServer
from repro.servers.singlet import SingleThreadedServer
from repro.servers.threaded import ThreadedServer

LARGE = 100 * 1024


def serve(env, cpu, make_connection, server_cls, size, **kwargs):
    server = server_cls(env, cpu, **kwargs)
    conn = make_connection()
    server.attach(conn)
    request = Request(env, "x", size)
    conn.send_request(request)
    env.run(request.completed)
    return server, conn, request


def test_singlet_write_spin_on_large_response(env, cpu, make_connection, calib):
    _, conn, request = serve(env, cpu, make_connection, SingleThreadedServer, LARGE)
    # Table IV: ~1 write per ACK-granularity chunk beyond the buffer.
    assert request.write_calls >= (LARGE - calib.tcp_send_buffer) // (4 * conn.ack_granularity)
    assert request.zero_writes >= 1


def test_singlet_no_spin_on_small_response(env, cpu, make_connection):
    _, _, request = serve(env, cpu, make_connection, SingleThreadedServer, 102)
    assert request.write_calls == 1
    assert request.zero_writes == 0


def test_threaded_single_write_call_regardless_of_size(env, cpu, make_connection):
    _, _, request = serve(env, cpu, make_connection, ThreadedServer, LARGE)
    assert request.write_calls == 1


def test_larger_send_buffer_removes_spin(env, cpu, calib):
    from repro.net.link import Link
    from repro.net.tcp import Connection

    server = SingleThreadedServer(env, cpu)
    conn = Connection(env, Link.lan(calib), calib, send_buffer_size=LARGE)
    server.attach(conn)
    request = Request(env, "x", LARGE)
    conn.send_request(request)
    env.run(request.completed)
    assert request.write_calls == 1


def test_singlet_blocks_loop_during_large_write(env, cpu, make_connection):
    """The naive handler occupies the single thread until the response is
    fully copied: a small request arriving behind a large one waits for
    the whole drain (the serialisation behind Figure 7)."""
    server = SingleThreadedServer(env, cpu)
    big_conn = make_connection()
    small_conn = make_connection()
    server.attach(big_conn)
    server.attach(small_conn)

    big = Request(env, "big", LARGE)
    big_conn.send_request(big)
    env.run(until=0.002)  # big request is mid-write now
    small = Request(env, "small", 102)
    small_conn.send_request(small)
    env.run(small.completed)
    # The small response could not overtake the big one's handler.
    assert small.completed_at >= big.service_started_at
    assert big.completed_at is not None
    assert small.completed_at > 0


def test_netty_interleaves_small_during_large_write(env, cpu, make_connection):
    """Netty's jump-out lets the worker serve other connections while a
    large response drains; the small request does NOT wait for the big
    transfer to finish."""
    server = NettyServer(env, cpu)
    big_conn = make_connection()
    small_conn = make_connection()
    server.attach(big_conn)
    server.attach(small_conn)

    big = Request(env, "big", LARGE)
    big_conn.send_request(big)
    env.run(until=0.0005)
    small = Request(env, "small", 102)
    small_conn.send_request(small)
    env.run(env.all_of([small.completed, big.completed]))
    assert small.completed_at < big.completed_at
