"""Thread-per-connection server specifics."""

import pytest

from repro.net.messages import Request
from repro.servers.threaded import ThreadedServer


def test_one_live_thread_per_connection(env, cpu, make_connection):
    server = ThreadedServer(env, cpu)
    before = cpu.live_threads
    connections = [make_connection() for _ in range(5)]
    for conn in connections:
        server.attach(conn)
    env.run(until=0.001)
    assert cpu.live_threads == before + 5


def test_max_threads_gates_service(env, cpu, make_connection):
    server = ThreadedServer(env, cpu, max_threads=1)
    c1, c2 = make_connection(), make_connection()
    server.attach(c1)
    server.attach(c2)
    env.run(until=0.001)
    # Only one connection got a worker-thread slot.
    assert server._active_threads == 1
    r1 = Request(env, "x", 100)
    c1.send_request(r1)
    env.run(r1.completed)
    # The gated connection still cannot serve (its loop holds the slot
    # request until a slot frees, which never happens here).
    r2 = Request(env, "x", 100)
    c2.send_request(r2)
    env.run(until=env.now + 0.05)
    assert r2.completed_at is None


def test_unlimited_threads_by_default(env, cpu, make_connection):
    server = ThreadedServer(env, cpu)
    assert server.max_threads is None
    connections = [make_connection() for _ in range(20)]
    for conn in connections:
        server.attach(conn)
    requests = []
    for conn in connections:
        request = Request(env, "x", 500)
        conn.send_request(request)
        requests.append(request)
    env.run(env.all_of([r.completed for r in requests]))
    assert all(r.completed_at is not None for r in requests)


def test_wake_cost_charged_per_blocking_wake(env, cpu, make_connection, calib):
    server = ThreadedServer(env, cpu)
    conn = make_connection()
    server.attach(conn)
    request = Request(env, "x", 100)
    conn.send_request(request)
    env.run(request.completed)
    # The blocking-read wake charged at least one wake cost as system time.
    assert cpu.counters.busy_system >= calib.thread_wake_cost
