"""Full Tomcat connector models: framework overhead and write continuations."""

import pytest

from repro.calibration import default_calibration
from repro.cpu.scheduler import CPU
from repro.net.link import Link
from repro.net.messages import Request
from repro.net.tcp import Connection
from repro.servers.tomcat import FRAMEWORK_OVERHEAD, TomcatAsyncServer, TomcatSyncServer
from repro.sim.core import Environment

LARGE = 100 * 1024


def serve(server_cls, size, **kwargs):
    calib = default_calibration()
    env = Environment()
    cpu = CPU(env, calib)
    server = server_cls(env, cpu, **kwargs)
    conn = Connection(env, Link.lan(calib), calib)
    server.attach(conn)
    request = Request(env, "x", size)
    conn.send_request(request)
    env.run(request.completed)
    return env, cpu, server, conn, request


def test_sync_framework_overhead_charged():
    _, cpu_plain, _, _, _ = serve_tomcat_free(102)
    _, cpu_tomcat, _, _, _ = serve(TomcatSyncServer, 102)
    assert cpu_tomcat.counters.busy_user >= cpu_plain.counters.busy_user + FRAMEWORK_OVERHEAD * 0.9


def serve_tomcat_free(size):
    from repro.servers.threaded import ThreadedServer

    return serve(ThreadedServer, size)


def test_async_small_response_no_continuations():
    _, _, server, conn, request = serve(TomcatAsyncServer, 102, workers=4)
    assert request.completed_at is not None
    assert not server._pending_writes
    assert request.write_calls == 1


def test_async_large_response_uses_continuations():
    _, _, server, conn, request = serve(TomcatAsyncServer, LARGE, workers=4)
    assert request.completed_at is not None
    # Multiple write calls, each a poller-dispatched continuation round.
    assert request.write_calls > 3
    assert not server._pending_writes  # cleaned up


def test_async_switches_explode_for_large_responses():
    """Table I: TomcatAsync's context switches per request at 100KB are a
    large multiple of TomcatSync's."""
    _, cpu_async, _, _, _ = serve(TomcatAsyncServer, LARGE, workers=4)
    _, cpu_sync, _, _, _ = serve(TomcatSyncServer, LARGE)
    assert cpu_async.counters.context_switches > 1.5 * cpu_sync.counters.context_switches


def test_async_sequential_large_responses():
    calib = default_calibration()
    env = Environment()
    cpu = CPU(env, calib)
    server = TomcatAsyncServer(env, cpu, workers=4)
    conn = Connection(env, Link.lan(calib), calib)
    server.attach(conn)
    for _ in range(3):
        request = Request(env, "x", LARGE)
        conn.send_request(request)
        env.run(request.completed)
    assert server.stats.requests_completed == 3
    assert server.selector.registered == 1  # back to read-watching
