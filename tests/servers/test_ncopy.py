"""N-copy single-threaded server (extension)."""

import pytest

from repro.calibration import default_calibration
from repro.cpu.scheduler import CPU
from repro.net.link import Link
from repro.net.messages import Request
from repro.net.tcp import Connection
from repro.servers.ncopy import NCopyServer
from repro.sim.core import Environment


def test_copies_validation(env, cpu):
    with pytest.raises(ValueError):
        NCopyServer(env, cpu, copies=0)


def test_connections_sharded_round_robin(env, cpu, make_connection):
    server = NCopyServer(env, cpu, copies=3)
    for _ in range(7):
        server.attach(make_connection())
    counts = sorted(copy.selector.registered for copy in server.copies)
    assert counts == [2, 2, 3]


def test_requests_served_by_owning_copy(env, cpu, make_connection):
    server = NCopyServer(env, cpu, copies=2)
    connections = [make_connection() for _ in range(4)]
    for conn in connections:
        server.attach(conn)
    requests = []
    for conn in connections:
        request = Request(env, "x", 500)
        conn.send_request(request)
        requests.append(request)
    env.run(env.all_of([r.completed for r in requests]))
    stats = server.aggregate_stats()
    assert stats["requests_completed"] == 4
    per_copy = [copy.stats.requests_completed for copy in server.copies]
    assert per_copy == [2, 2]


def test_scales_with_cores():
    def throughput(cores):
        calib = default_calibration(cores=cores)
        env = Environment()
        cpu = CPU(env, calib)
        server = NCopyServer(env, cpu, copies=cores)
        link = Link.lan(calib)
        from repro.workload.mixes import FixedMix
        from repro.workload.population import build_population
        from repro.metrics.collector import RunRecorder
        from repro.sim.rng import SeedStreams

        recorder = RunRecorder(env, warmup=0.2)
        build_population(env, server, size=16, mix=FixedMix(102), link=link,
                         calibration=calib, seeds=SeedStreams(1), recorder=recorder)
        env.run(until=0.7)
        return recorder.report().throughput

    assert throughput(2) > 1.7 * throughput(1)


def test_zero_switches_per_copy(env, cpu, make_connection):
    server = NCopyServer(env, cpu, copies=1)
    conn = make_connection()
    server.attach(conn)
    warm = Request(env, "w", 100)
    conn.send_request(warm)
    env.run(warm.completed)
    before = cpu.counters.context_switches
    for _ in range(10):
        request = Request(env, "x", 100)
        conn.send_request(request)
        env.run(request.completed)
    assert cpu.counters.context_switches - before <= 1
