"""Shared server machinery: applications, read/write helpers."""

import pytest

from repro.errors import ServerError
from repro.net.messages import Request
from repro.servers.base import BaseServer, ComputeApplication, naive_spin_write
from repro.servers.threaded import ThreadedServer


def test_compute_application_returns_response_size(env, cpu, calib):
    app = ComputeApplication(calib)
    server = ThreadedServer(env, cpu, app=app)
    thread = cpu.thread()
    request = Request(env, "x", 5000)

    def runner(env):
        size = yield from app.service(server, thread, request)
        return size

    process = env.process(runner(env))
    assert env.run(process) == 5000
    assert cpu.counters.busy_user == pytest.approx(calib.request_cpu_cost(5000))


def test_double_attach_rejected(env, cpu, make_connection):
    server = ThreadedServer(env, cpu)
    conn = make_connection()
    server.attach(conn)
    with pytest.raises(ServerError):
        server.attach(conn)


def test_read_request_charges_syscall(env, cpu, make_connection):
    server = ThreadedServer(env, cpu)
    conn = make_connection()
    request = Request(env, "x", 100)
    conn.send_request(request)
    env.run()
    thread = cpu.thread()

    def reader(env):
        got = yield from server._read_request(thread, conn)
        return got

    syscalls_before = cpu.counters.syscalls
    process = env.process(reader(env))
    assert env.run(process) is request
    assert cpu.counters.syscalls == syscalls_before + 1
    assert request.service_started_at is not None


def test_read_request_empty_inbox_returns_none(env, cpu, make_connection):
    server = ThreadedServer(env, cpu)
    conn = make_connection()

    def reader(env):
        got = yield from server._read_request(cpu.thread(), conn)
        return got
        yield  # pragma: no cover

    process = env.process(reader(env))
    assert env.run(process) is None


def test_naive_spin_write_small_response_one_call(env, cpu, make_connection):
    server = ThreadedServer(env, cpu)
    conn = make_connection()
    thread = cpu.thread()
    request = Request(env, "x", 500)

    def writer(env):
        yield from naive_spin_write(server, thread, conn, request, 500)

    env.process(writer(env))
    env.run()
    assert request.write_calls == 1
    assert server.stats.responses_written == 1


def test_naive_spin_write_large_response_spins(env, cpu, make_connection, calib):
    server = ThreadedServer(env, cpu)
    conn = make_connection()
    thread = cpu.thread()
    size = 100 * 1024
    request = Request(env, "x", size)

    def writer(env):
        yield from naive_spin_write(server, thread, conn, request, size)

    env.process(writer(env))
    env.run()
    assert request.write_calls > size // calib.tcp_send_buffer
    assert request.zero_writes >= 1
    assert conn.stats.bytes_written == size


def test_charge_write_counts_syscall_and_costs(env, cpu, calib):
    server = ThreadedServer(env, cpu)
    thread = cpu.thread()

    def runner(env):
        yield server._charge_write(thread, 10_000)

    env.process(runner(env))
    env.run()
    assert cpu.counters.syscalls == 1
    assert cpu.counters.busy_user == pytest.approx(
        calib.syscall_user_cost + calib.nio_write_user_cost
    )
