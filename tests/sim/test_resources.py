"""Resource / PriorityResource semantics."""

import pytest

from repro.sim.core import Environment
from repro.sim.resources import PriorityResource, Resource


def test_capacity_must_be_positive(env):
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_grants_up_to_capacity_immediately(env):
    resource = Resource(env, capacity=2)
    r1, r2, r3 = resource.request(), resource.request(), resource.request()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert resource.count == 2
    assert resource.queue_length == 1


def test_release_grants_next_in_fifo_order(env):
    resource = Resource(env, capacity=1)
    first = resource.request()
    second = resource.request()
    third = resource.request()
    first.release()
    assert second.triggered and not third.triggered
    second.release()
    assert third.triggered


def test_cancel_pending_request(env):
    resource = Resource(env, capacity=1)
    holder = resource.request()
    waiting = resource.request()
    waiting.release()  # cancel while queued
    other = resource.request()
    holder.release()
    assert other.triggered
    assert not waiting.triggered


def test_context_manager_releases(env):
    resource = Resource(env, capacity=1)

    def worker(env, resource, log, name):
        with resource.request() as req:
            yield req
            log.append((env.now, name))
            yield env.timeout(1)

    log = []
    env.process(worker(env, resource, log, "a"))
    env.process(worker(env, resource, log, "b"))
    env.run()
    assert log == [(0.0, "a"), (1.0, "b")]


def test_priority_resource_orders_by_priority(env):
    resource = PriorityResource(env, capacity=1)
    holder = resource.request()
    low = resource.request(priority=10)
    high = resource.request(priority=1)
    holder.release()
    assert high.triggered and not low.triggered


def test_priority_ties_break_fifo(env):
    resource = PriorityResource(env, capacity=1)
    holder = resource.request()
    first = resource.request(priority=5)
    second = resource.request(priority=5)
    holder.release()
    assert first.triggered and not second.triggered


def test_queue_length_counts_waiting_only(env):
    resource = Resource(env, capacity=1)
    resource.request()
    resource.request()
    resource.request()
    assert resource.count == 1
    assert resource.queue_length == 2


def test_many_workers_throughput(env):
    resource = Resource(env, capacity=3)
    done = []

    def worker(env, resource, i):
        with resource.request() as req:
            yield req
            yield env.timeout(1)
        done.append((env.now, i))

    for i in range(9):
        env.process(worker(env, resource, i))
    env.run()
    assert env.now == 3.0
    assert len(done) == 9
