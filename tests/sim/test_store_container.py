"""Store and Container semantics."""

import pytest

from repro.sim.resources import Container, Store


def test_store_fifo_order(env):
    store = Store(env)
    for i in range(3):
        store.put(i)
    got = [store.get() for _ in range(3)]
    env.run()
    assert [g.value for g in got] == [0, 1, 2]


def test_store_get_blocks_until_put(env):
    store = Store(env)
    get = store.get()
    assert not get.triggered

    def producer(env, store):
        yield env.timeout(2)
        yield store.put("item")

    env.process(producer(env, store))
    env.run()
    assert get.value == "item"


def test_store_bounded_put_blocks(env):
    store = Store(env, capacity=1)
    p1 = store.put("a")
    p2 = store.put("b")
    assert p1.triggered
    assert not p2.triggered
    store.get()
    assert p2.triggered


def test_store_capacity_validation(env):
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_store_size_tracks_items(env):
    store = Store(env)
    store.put("x")
    store.put("y")
    assert store.size == 2
    store.get()
    assert store.size == 1


def test_store_interleaved_producers_consumers(env):
    store = Store(env)
    consumed = []

    def producer(env, store):
        for i in range(5):
            yield env.timeout(1)
            yield store.put(i)

    def consumer(env, store):
        for _ in range(5):
            item = yield store.get()
            consumed.append((env.now, item))

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert consumed == [(float(i + 1), i) for i in range(5)]


def test_container_initial_level_validation(env):
    with pytest.raises(ValueError):
        Container(env, capacity=10, init=20)
    with pytest.raises(ValueError):
        Container(env, capacity=0)


def test_container_get_blocks_until_enough(env):
    container = Container(env, capacity=100, init=0)
    get = container.get(10)
    assert not get.triggered
    container.put(5)
    assert not get.triggered
    container.put(5)
    assert get.triggered
    assert container.level == 0


def test_container_put_blocks_at_capacity(env):
    container = Container(env, capacity=10, init=8)
    put = container.put(5)
    assert not put.triggered
    container.get(5)
    assert put.triggered
    assert container.level == 8


def test_container_rejects_nonpositive_amounts(env):
    container = Container(env, capacity=10)
    with pytest.raises(ValueError):
        container.put(0)
    with pytest.raises(ValueError):
        container.get(-1)
