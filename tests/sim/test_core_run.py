"""Environment.run/step/peek semantics and determinism."""

import pytest

from repro.errors import SimulationError
from repro.sim.core import PRIORITY_URGENT, Environment


def test_run_until_time_advances_clock(env):
    env.timeout(3)
    env.run(until=10)
    assert env.now == 10.0


def test_run_until_past_raises(env):
    env.run(until=5)
    with pytest.raises(ValueError):
        env.run(until=1)


def test_run_drains_queue_without_until(env):
    env.timeout(1)
    env.timeout(7)
    env.run()
    assert env.now == 7.0


def test_run_until_event_returns_value(env):
    def worker(env):
        yield env.timeout(2)
        return "v"

    process = env.process(worker(env))
    assert env.run(process) == "v"
    assert env.now == 2.0


def test_run_until_already_processed_event(env):
    timeout = env.timeout(1, value="x")
    env.run()
    assert env.run(timeout) == "x"


def test_step_empty_queue_raises(env):
    with pytest.raises(SimulationError):
        env.step()


def test_peek_returns_next_event_time(env):
    assert env.peek() == float("inf")
    env.timeout(4)
    env.timeout(2)
    assert env.peek() == 2.0


def test_same_time_events_fifo_order(env):
    order = []
    for tag in ["a", "b", "c"]:
        event = env.timeout(1.0, value=tag)
        event.callbacks.append(lambda ev: order.append(ev.value))
    env.run()
    assert order == ["a", "b", "c"]


def test_urgent_priority_preempts_same_time(env):
    order = []
    normal = env.event()
    normal.succeed("normal")
    normal.callbacks.append(lambda ev: order.append(ev.value))
    urgent = env.event()
    urgent.succeed("urgent", priority=PRIORITY_URGENT)
    urgent.callbacks.append(lambda ev: order.append(ev.value))
    env.run()
    assert order == ["urgent", "normal"]


def test_clock_never_goes_backwards(env):
    times = []

    def worker(env, delay):
        yield env.timeout(delay)
        times.append(env.now)

    for delay in [5, 1, 3, 1, 4]:
        env.process(worker(env, delay))
    env.run()
    assert times == sorted(times)


def test_initial_time_offset():
    env = Environment(initial_time=100.0)
    env.timeout(5)
    env.run()
    assert env.now == 105.0


def test_run_is_deterministic_across_instances():
    def trace(env):
        log = []

        def worker(env, name, delay):
            yield env.timeout(delay)
            log.append((env.now, name))
            yield env.timeout(delay)
            log.append((env.now, name))

        for i, delay in enumerate([0.3, 0.1, 0.2]):
            env.process(worker(env, f"w{i}", delay))
        env.run()
        return log

    assert trace(Environment()) == trace(Environment())
