"""Process semantics: generators, return values, exceptions, interrupts."""

import pytest

from repro.errors import InterruptError, ProcessError, SimulationError
from repro.sim.core import Environment


def test_process_requires_generator(env):
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_process_return_value(env):
    def worker(env):
        yield env.timeout(1)
        return "result"

    process = env.process(worker(env))
    assert env.run(process) == "result"
    assert not process.is_alive


def test_process_is_alive_until_done(env):
    def worker(env):
        yield env.timeout(5)

    process = env.process(worker(env))
    assert process.is_alive
    env.run(until=1)
    assert process.is_alive
    env.run()
    assert not process.is_alive


def test_exception_propagates_to_run_until_process(env):
    def worker(env):
        yield env.timeout(1)
        raise KeyError("missing")

    process = env.process(worker(env))
    with pytest.raises(KeyError):
        env.run(process)


def test_waiting_process_receives_exception_at_yield(env):
    def failer(env):
        yield env.timeout(1)
        raise ValueError("inner")

    def waiter(env, target):
        try:
            yield target
        except ValueError as exc:
            return f"caught {exc}"

    target = env.process(failer(env))
    waiter_proc = env.process(waiter(env, target))
    assert env.run(waiter_proc) == "caught inner"


def test_yielding_non_event_fails_the_process(env):
    def bad(env):
        yield 42

    process = env.process(bad(env))
    with pytest.raises(ProcessError, match="non-event"):
        env.run(process)


def test_yield_already_processed_event_resumes_immediately(env):
    timeout = env.timeout(1, value="early")
    env.run()

    def worker(env, ev):
        value = yield ev
        return (env.now, value)

    process = env.process(worker(env, timeout))
    env.run()
    assert process.value == (1.0, "early")


def test_interrupt_delivers_cause(env):
    observed = {}

    def victim(env):
        try:
            yield env.timeout(10)
        except InterruptError as exc:
            observed["cause"] = exc.cause
            observed["time"] = env.now

    def attacker(env, target):
        yield env.timeout(3)
        target.interrupt("deadline")

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()
    assert observed == {"cause": "deadline", "time": 3.0}


def test_interrupted_process_can_rewait_original_event(env):
    def victim(env):
        timeout = env.timeout(10)
        try:
            yield timeout
        except InterruptError:
            pass
        yield timeout
        return env.now

    def attacker(env, target):
        yield env.timeout(2)
        target.interrupt()

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()
    assert target.value == 10.0


def test_interrupting_terminated_process_raises(env):
    def quick(env):
        yield env.timeout(1)

    process = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        process.interrupt()


def test_self_interrupt_rejected(env):
    def worker(env):
        process = env.active_process
        process.interrupt()
        yield env.timeout(1)

    process = env.process(worker(env))
    with pytest.raises(SimulationError):
        env.run(process)


def test_active_process_visible_during_execution(env):
    seen = []

    def worker(env):
        seen.append(env.active_process)
        yield env.timeout(1)

    process = env.process(worker(env))
    env.run()
    assert seen == [process]
    assert env.active_process is None


def test_process_chain_passes_values(env):
    def inner(env):
        yield env.timeout(1)
        return 10

    def outer(env):
        value = yield env.process(inner(env))
        return value * 2

    process = env.process(outer(env))
    assert env.run(process) == 20


def test_process_name_defaults_and_override(env):
    def worker(env):
        yield env.timeout(1)

    named = env.process(worker(env), name="my-proc")
    assert named.name == "my-proc"
    default = env.process(worker(env))
    assert default.name  # non-empty
