"""Event lifecycle semantics of the DES kernel."""

import pytest

from repro.errors import EventLifecycleError
from repro.sim.core import Environment, Event, Timeout


def test_new_event_is_untriggered(env):
    event = env.event()
    assert not event.triggered
    assert not event.processed
    assert event.ok  # default before failure


def test_value_before_trigger_raises(env):
    event = env.event()
    with pytest.raises(EventLifecycleError):
        _ = event.value


def test_succeed_carries_value(env):
    event = env.event()
    event.succeed(42)
    assert event.triggered
    assert event.value == 42
    assert event.ok


def test_succeed_none_is_a_valid_value(env):
    event = env.event()
    event.succeed()
    assert event.triggered
    assert event.value is None


def test_double_succeed_raises(env):
    event = env.event()
    event.succeed(1)
    with pytest.raises(EventLifecycleError):
        event.succeed(2)


def test_fail_then_succeed_raises(env):
    event = env.event()
    event.fail(ValueError("x"))
    event.defused = True
    with pytest.raises(EventLifecycleError):
        event.succeed(1)


def test_fail_requires_exception(env):
    event = env.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_fail_records_exception_value(env):
    event = env.event()
    exc = ValueError("boom")
    event.fail(exc)
    event.defused = True
    assert not event.ok
    assert event.value is exc


def test_callbacks_run_once_on_processing(env):
    event = env.event()
    calls = []
    event.callbacks.append(lambda ev: calls.append(ev.value))
    event.succeed("x")
    assert calls == []  # not yet processed
    env.run()
    assert calls == ["x"]
    assert event.processed


def test_processed_event_has_no_callback_list(env):
    event = env.event()
    event.succeed()
    env.run()
    assert event.callbacks is None


def test_trigger_copies_state_from_other_event(env):
    source = env.event()
    target = env.event()
    source.succeed("payload")
    target.trigger(source)
    assert target.triggered
    assert target.value == "payload"


def test_trigger_copies_failure_and_defuses_source(env):
    source = env.event()
    target = env.event()
    source.fail(RuntimeError("bad"))
    target.trigger(source)
    target.defused = True
    assert source.defused
    assert not target.ok


def test_timeout_negative_delay_rejected(env):
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_triggers_at_its_time(env):
    timeout = env.timeout(2.5, value="done")
    env.run()
    assert env.now == pytest.approx(2.5)
    assert timeout.value == "done"


def test_zero_timeout_processes_immediately(env):
    timeout = env.timeout(0.0)
    env.run()
    assert env.now == 0.0
    assert timeout.processed


def test_unhandled_failed_event_raises_from_run(env):
    event = env.event()
    event.fail(RuntimeError("nobody caught me"))
    with pytest.raises(RuntimeError, match="nobody caught me"):
        env.run()


def test_defused_failed_event_does_not_raise(env):
    event = env.event()
    event.fail(RuntimeError("handled"))
    event.defused = True
    env.run()  # no exception


def test_repr_shows_state(env):
    event = env.event()
    assert "pending" in repr(event)
    event.succeed()
    assert "triggered" in repr(event)
    env.run()
    assert "processed" in repr(event)
