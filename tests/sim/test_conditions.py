"""Composite events: all_of / any_of."""

import pytest

from repro.errors import SimulationError
from repro.sim.core import Environment


def test_all_of_waits_for_every_event(env):
    t1 = env.timeout(1, value="a")
    t2 = env.timeout(3, value="b")
    condition = env.all_of([t1, t2])
    env.run(condition)
    assert env.now == 3.0
    assert condition.value == {t1: "a", t2: "b"}


def test_any_of_returns_on_first(env):
    t1 = env.timeout(5, value="slow")
    t2 = env.timeout(1, value="fast")
    condition = env.any_of([t1, t2])
    env.run(condition)
    assert env.now == 1.0
    assert condition.value == {t2: "fast"}


def test_all_of_empty_succeeds_immediately(env):
    condition = env.all_of([])
    assert condition.triggered
    assert condition.value == {}


def test_any_of_empty_succeeds_immediately(env):
    condition = env.any_of([])
    assert condition.triggered


def test_condition_with_already_processed_children(env):
    t1 = env.timeout(1, value="x")
    env.run()
    t2 = env.timeout(1, value="y")
    condition = env.all_of([t1, t2])
    env.run(condition)
    assert condition.value == {t1: "x", t2: "y"}


def test_condition_fails_when_child_fails(env):
    def failer(env):
        yield env.timeout(1)
        raise ValueError("child died")

    child = env.process(failer(env))
    other = env.timeout(10)
    condition = env.all_of([child, other])
    with pytest.raises(ValueError, match="child died"):
        env.run(condition)


def test_condition_rejects_mixed_environments(env):
    other_env = Environment()
    t1 = env.timeout(1)
    t2 = other_env.timeout(1)
    with pytest.raises(SimulationError):
        env.all_of([t1, t2])


def test_any_of_result_includes_simultaneous_events(env):
    t1 = env.timeout(1, value="a")
    t2 = env.timeout(1, value="b")
    condition = env.any_of([t1, t2])
    env.run(condition)
    # Both trigger at t=1; the condition fires on the first processed but
    # collects every already-triggered child.
    assert t1 in condition.value


def test_process_can_yield_condition(env):
    def worker(env):
        t1 = env.timeout(2, value=1)
        t2 = env.timeout(4, value=2)
        results = yield env.all_of([t1, t2])
        return sum(results.values())

    process = env.process(worker(env))
    assert env.run(process) == 3
