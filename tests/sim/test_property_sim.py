"""Property-based tests of the DES kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.core import Environment
from repro.sim.resources import Resource, Store


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_timeouts_process_in_nondecreasing_time_order(delays):
    env = Environment()
    processed = []
    for delay in delays:
        event = env.timeout(delay)
        event.callbacks.append(lambda ev, d=delay: processed.append(env.now))
    env.run()
    assert processed == sorted(processed)
    assert env.now == max(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_every_process_completes_and_clock_is_final_max(delays):
    env = Environment()

    def worker(env, delay):
        yield env.timeout(delay)
        return delay

    procs = [env.process(worker(env, d)) for d in delays]
    env.run()
    assert all(not p.is_alive for p in procs)
    assert [p.value for p in procs] == delays


@given(
    capacity=st.integers(min_value=1, max_value=5),
    holds=st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=25),
)
@settings(max_examples=50, deadline=None)
def test_resource_never_exceeds_capacity_and_serves_everyone(capacity, holds):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    peak = [0]
    served = []

    def worker(env, resource, hold, i):
        with resource.request() as req:
            yield req
            peak[0] = max(peak[0], resource.count)
            yield env.timeout(hold)
        served.append(i)

    for i, hold in enumerate(holds):
        env.process(worker(env, resource, hold, i))
    env.run()
    assert peak[0] <= capacity
    assert sorted(served) == list(range(len(holds)))
    # Work-conserving lower/upper bounds on the makespan.
    assert env.now >= max(holds) - 1e-9
    assert env.now <= sum(holds) + 1e-9


@given(items=st.lists(st.integers(), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_store_preserves_order_and_conserves_items(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer(env, store):
        for item in items:
            yield store.put(item)
            yield env.timeout(0.1)

    def consumer(env, store):
        for _ in items:
            value = yield store.get()
            received.append(value)

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert received == items
    assert store.size == 0


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_simulation_replay_is_identical(seed):
    import random

    def run_once():
        env = Environment()
        rng = random.Random(seed)
        log = []

        def worker(env, name):
            for _ in range(5):
                yield env.timeout(rng.random())
                log.append((round(env.now, 12), name))

        for i in range(3):
            env.process(worker(env, i))
        env.run()
        return log

    assert run_once() == run_once()
