"""Deterministic RNG streams."""

from repro.sim.rng import SeedStreams, derive_seed


def test_derive_seed_is_stable():
    assert derive_seed(42, "client", 3) == derive_seed(42, "client", 3)


def test_derive_seed_varies_with_path():
    assert derive_seed(42, "client", 3) != derive_seed(42, "client", 4)
    assert derive_seed(42, "client") != derive_seed(42, "service")


def test_derive_seed_varies_with_root():
    assert derive_seed(1, "x") != derive_seed(2, "x")


def test_stream_returns_same_generator_object():
    streams = SeedStreams(7)
    assert streams.stream("a") is streams.stream("a")


def test_streams_are_reproducible_across_instances():
    a = SeedStreams(7).stream("client", 0)
    b = SeedStreams(7).stream("client", 0)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_streams_are_independent():
    streams = SeedStreams(7)
    first = streams.stream("a")
    baseline = SeedStreams(7).stream("b")
    # Drawing from stream "a" must not perturb stream "b".
    for _ in range(100):
        first.random()
    fresh = streams.stream("b")
    assert [fresh.random() for _ in range(5)] == [baseline.random() for _ in range(5)]


def test_fork_produces_different_universe():
    root = SeedStreams(7)
    fork = root.fork("replica", 1)
    assert root.stream("x").random() != fork.stream("x").random()


def test_fork_is_reproducible():
    a = SeedStreams(7).fork("replica", 1).stream("x")
    b = SeedStreams(7).fork("replica", 1).stream("x")
    assert a.random() == b.random()


def test_seed_for_matches_stream_seed():
    streams = SeedStreams(3)
    import random

    expected = random.Random(streams.seed_for("w", 2)).random()
    assert streams.stream("w", 2).random() == expected
