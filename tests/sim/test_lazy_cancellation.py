"""Lazy timeout cancellation and pooling: the memory contract.

Cancelling a timeout is an O(1) mark — the heap entry is dropped at pop
time or swept by compaction.  These tests pin the properties that make
that safe to rely on:

* dead entries never accumulate without bound (interrupt storms, any_of
  losers, fault-injected retry churn all stay heap-bounded);
* pooled timeouts really are recycled, and the pool itself is capped;
* a cancelled timeout that a process re-yields still fires at its
  original absolute time, even after compaction dropped its heap entry.
"""

from repro.errors import InterruptError
from repro.sim import core as core_module
from repro.sim.core import Environment


def _heap_len(env):
    return len(env._queue)


def test_heap_bounded_across_10k_interrupts(env):
    """An interrupt storm must not leave one dead heap entry per interrupt."""
    interrupts = 10_000
    peak = [0]

    def waiter(env):
        while True:
            try:
                yield env.timeout(1e9)  # never fires; always interrupted
            except InterruptError:
                continue

    def driver(env, target):
        for _ in range(interrupts):
            yield env.timeout(0.001)
            target.interrupt()
            peak[0] = max(peak[0], _heap_len(env))

    target = env.process(waiter(env))
    done = env.process(driver(env, target))
    env.run(done)
    # Compaction keeps cancelled entries at O(live + _COMPACT_MIN), not
    # O(interrupts): the heap never grows anywhere near 10k entries.
    assert peak[0] < 4 * core_module._COMPACT_MIN
    assert env._cancelled_entries <= _heap_len(env)


def test_any_of_losers_are_pruned(env):
    """Losing any_of timers are cancelled and swept, not left to expire."""
    rounds, losers_per_round = 200, 20
    peak = [0]

    def racer(env):
        for _ in range(rounds):
            winner = env.timeout(0.001)
            losers = [env.timeout(1e6) for _ in range(losers_per_round)]
            yield env.any_of([winner, *losers])
            peak[0] = max(peak[0], _heap_len(env))

    env.run(env.process(racer(env)))
    # 4000 losers raced; without pruning + compaction they would all sit
    # in the heap until t=1e6.
    assert peak[0] < 4 * core_module._COMPACT_MIN


def test_pooled_timeout_objects_are_recycled(env):
    """Sequential pooled waits reuse objects instead of allocating."""
    seen = []
    values = []

    def worker(env):
        for i in range(6):
            timer = env.pooled_timeout(0.5, i)
            seen.append(timer)
            values.append((yield timer))

    env.run(env.process(worker(env)))
    assert values == list(range(6))
    # The next wait is armed *inside* the resume callback, before the
    # just-fired timer is returned to the pool, so steady state ping-pongs
    # between exactly two objects rather than allocating six.
    assert len({id(t) for t in seen}) == 2
    assert seen[0] is seen[2] and seen[1] is seen[3]


def test_pooled_timeout_reset_state_on_reuse(env):
    """A recycled timer carries no state over from its previous life."""
    first = env.pooled_timeout(0.1, "first")
    env.run(until=0.2)
    second = env.pooled_timeout(0.3, "second")
    assert second is first  # recycled
    assert second._value == "second"
    assert not second._cancelled
    fired = []
    second.callbacks.append(lambda ev: fired.append(ev._value))
    env.run(until=1.0)
    assert fired == ["second"]


def test_timeout_pool_is_capped(env):
    """The free-list never grows past _POOL_MAX objects."""
    for _ in range(core_module._POOL_MAX + 200):
        env.pooled_timeout(0.001)
    env.run(until=1.0)
    assert len(env._timeout_pool) <= core_module._POOL_MAX


def test_cancelled_timeout_revives_at_original_time_after_compaction(env):
    """Re-yielding a compacted-away timeout reschedules it at _fire_at.

    The documented interrupt contract says a process may re-yield the
    event it was waiting on.  Lazy cancellation must honour that even in
    the worst case: the timeout was cancelled *and* compaction already
    dropped its heap entry (leaving a tombstone).
    """
    fired_at = []

    def target(env):
        timer = env.timeout(5.0)
        try:
            yield timer
        except InterruptError:
            pass
        # Force a compaction sweep while `timer` sits cancelled in the
        # heap: flood it with cancelled junk entries past the threshold.
        junk = [env.timeout(1e6) for _ in range(4 * core_module._COMPACT_MIN)]
        for j in junk:
            env._cancel(j)
        assert all(entry[3] is not timer for entry in env._queue)  # tombstoned
        yield timer  # must still fire at its original absolute time
        fired_at.append(env.now)

    proc = env.process(target(env))

    def driver(env):
        yield env.timeout(1.0)
        proc.interrupt()

    env.process(driver(env))
    env.run(until=10.0)
    assert fired_at == [5.0]


def test_fault_injected_retry_churn_does_not_leak():
    """A spiky fault plan with aggressive retries keeps the heap bounded.

    Latency spikes make client retry timers lose their races constantly;
    every loser is lazily cancelled.  The heap must stay proportional to
    the live population, not to the number of spikes injected.
    """
    from repro.cpu.scheduler import CPU
    from repro.experiments.micro import MicroConfig, make_server
    from repro.faults import FaultInjector, FaultPlan
    from repro.metrics.collector import RunRecorder
    from repro.net.link import Link
    from repro.sim.rng import SeedStreams
    from repro.workload.client import RetryPolicy
    from repro.workload.mixes import FixedMix
    from repro.workload.population import ConnectionOptions, build_population

    plan = FaultPlan(
        segment_loss_prob=0.05,
        latency_spike_prob=0.30,
        latency_spike=0.010,
        rto=0.020,
    )
    config = MicroConfig(
        "SingleT-Async",
        8,
        duration=0.6,
        warmup=0.05,
        fault_plan=plan,
        retry=RetryPolicy(timeout=0.02, max_retries=3, backoff_base=0.002),
    )
    env = Environment()
    cpu = CPU(env, config.calibration, name="cpu")
    server = make_server(config.server, env, cpu, config)
    link = Link.lan(config.calibration)
    recorder = RunRecorder(env, warmup=config.warmup)
    seeds = SeedStreams(config.seed)
    injector = FaultInjector(env, plan, seeds.fork("faults"))
    injector.start_stalls(cpu)
    build_population(
        env,
        server,
        size=config.concurrency,
        mix=FixedMix(config.response_size),
        link=link,
        calibration=config.calibration,
        seeds=seeds,
        recorder=recorder,
        options=ConnectionOptions(
            send_buffer_size=config.send_buffer_size, autotune=config.autotune
        ),
        ramp_up=config.warmup * 0.8,
        faults=injector,
        retry=config.retry,
    )
    env.run(until=config.duration)
    assert injector.latency_spikes > 10  # the plan actually fired
    # Live entries scale with the 8-client population; cancelled entries
    # are bounded by the compaction rule, not by the spike count.
    assert _heap_len(env) < 4 * core_module._COMPACT_MIN
    assert env._cancelled_entries <= _heap_len(env)
