"""FaultPlan / StallWindow / CrashWindow validation and the named presets."""

import pytest

from repro.errors import ExperimentError, SimulationError
from repro.faults import FAULT_PRESETS, CrashWindow, FaultPlan, StallWindow


def test_default_plan_is_disabled():
    plan = FaultPlan()
    assert not plan.enabled
    assert not plan.connection_faults_enabled
    assert plan.describe() == "no faults"


def test_plan_is_hashable_and_value_comparable():
    assert FaultPlan(segment_loss_prob=0.1) == FaultPlan(segment_loss_prob=0.1)
    assert hash(FaultPlan()) == hash(FaultPlan())
    assert FaultPlan() != FaultPlan(latency_spike_prob=0.5)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"segment_loss_prob": -0.1},
        {"segment_loss_prob": 1.5},
        {"segment_corrupt_prob": 2.0},
        {"latency_spike_prob": -1.0},
        {"reset_request_prob": 1.01},
        {"client_abort_prob": -0.5},
        {"latency_spike": -0.001},
        {"client_abort_delay": 0.0},
        {"rto": 0.0},
        {"rto": -1.0},
        {"reset_after_requests": 0},
        {"reset_after_bytes": 0},
    ],
)
def test_plan_rejects_bad_values(kwargs):
    with pytest.raises(ExperimentError):
        FaultPlan(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"segment_loss_prob": 0.01},
        {"segment_corrupt_prob": 0.01},
        {"latency_spike_prob": 0.01},
        {"reset_request_prob": 0.01},
        {"reset_after_requests": 5},
        {"reset_after_bytes": 1024},
    ],
)
def test_connection_faults_enable_both_flags(kwargs):
    plan = FaultPlan(**kwargs)
    assert plan.enabled
    assert plan.connection_faults_enabled


def test_client_and_server_faults_do_not_touch_the_data_path():
    aborts = FaultPlan(client_abort_prob=0.5)
    stalls = FaultPlan(server_stalls=(StallWindow(1.0, 0.1),))
    assert aborts.enabled and not aborts.connection_faults_enabled
    assert stalls.enabled and not stalls.connection_faults_enabled


def test_stall_window_validation():
    with pytest.raises(ExperimentError):
        StallWindow(start=-1.0, duration=0.1)
    with pytest.raises(ExperimentError):
        StallWindow(start=0.0, duration=0.0)


def test_describe_lists_only_non_default_knobs():
    plan = FaultPlan(segment_loss_prob=0.03, server_stalls=(StallWindow(1.0, 0.1),))
    summary = plan.describe()
    assert "segment_loss_prob" in summary
    assert "stalls=1" in summary
    assert "latency_spike_prob" not in summary


def test_crash_windows_enable_the_plan_but_not_the_data_path():
    plan = FaultPlan(crash_windows=(CrashWindow(start=1.0, end=2.0),))
    assert plan.enabled
    assert not plan.connection_faults_enabled
    assert "crashes=1" in plan.describe()


@pytest.mark.parametrize(
    "window",
    [
        CrashWindow(start=-0.5, end=1.0),
        CrashWindow(start=1.0, end=1.0),
        CrashWindow(start=2.0, end=1.0),
        CrashWindow(start=0.0, end=1.0, instance=-1),
        CrashWindow(start=0.0, end=1.0, warmup=-0.1),
    ],
)
def test_validate_rejects_malformed_crash_windows(window):
    with pytest.raises(SimulationError):
        FaultPlan(crash_windows=(window,)).validate()


def test_validate_rejects_overlapping_windows_on_one_instance():
    plan = FaultPlan(
        crash_windows=(
            CrashWindow(start=1.0, end=3.0),
            CrashWindow(start=2.0, end=4.0),
        )
    )
    with pytest.raises(SimulationError):
        plan.validate()
    # Declaration order must not matter: the validator sorts per instance.
    reordered = FaultPlan(
        crash_windows=(
            CrashWindow(start=2.0, end=4.0),
            CrashWindow(start=1.0, end=3.0),
        )
    )
    with pytest.raises(SimulationError):
        reordered.validate()


def test_validate_accepts_back_to_back_and_cross_instance_overlap():
    plan = FaultPlan(
        crash_windows=(
            CrashWindow(start=1.0, end=2.0),
            # Touching windows are legal: the instance restarts at 2.0 and
            # crashes again in the same instant.
            CrashWindow(start=2.0, end=3.0),
            # Concurrent crash of a *different* instance is legal too.
            CrashWindow(start=1.5, end=2.5, instance=1),
        )
    )
    assert plan.validate() is plan


def test_presets_escalate():
    assert list(FAULT_PRESETS) == ["none", "mild", "moderate", "severe"]
    assert not FAULT_PRESETS["none"].enabled
    for name in ("mild", "moderate", "severe"):
        assert FAULT_PRESETS[name].enabled, name
    assert (
        FAULT_PRESETS["mild"].segment_loss_prob
        < FAULT_PRESETS["moderate"].segment_loss_prob
        < FAULT_PRESETS["severe"].segment_loss_prob
    )
    assert len(FAULT_PRESETS["severe"].server_stalls) > len(
        FAULT_PRESETS["moderate"].server_stalls
    )


# ----------------------------------------------------------------------
# Gray-failure DegradeWindows
# ----------------------------------------------------------------------

def test_degrade_windows_enable_the_plan_but_not_the_data_path():
    from repro.faults import DegradeWindow

    plan = FaultPlan(degrade_windows=(DegradeWindow(start=1.0, end=2.0),))
    assert plan.enabled
    assert not plan.connection_faults_enabled
    assert "degrades=1" in plan.describe()


def test_validate_rejects_malformed_degrade_windows():
    from repro.faults import DegradeWindow

    for window in (
        DegradeWindow(start=-0.5, end=1.0),
        DegradeWindow(start=1.0, end=1.0),
        DegradeWindow(start=2.0, end=1.0),
        DegradeWindow(start=0.0, end=1.0, instance=-1),
        DegradeWindow(start=0.0, end=1.0, share=0.0),
        DegradeWindow(start=0.0, end=1.0, share=1.0),
        DegradeWindow(start=0.0, end=1.0, share=-0.2),
    ):
        with pytest.raises(SimulationError):
            FaultPlan(degrade_windows=(window,)).validate()


def test_validate_rejects_overlapping_degrade_windows_on_one_instance():
    from repro.faults import DegradeWindow

    plan = FaultPlan(
        degrade_windows=(
            DegradeWindow(start=1.0, end=3.0),
            DegradeWindow(start=2.0, end=4.0),
        )
    )
    with pytest.raises(SimulationError):
        plan.validate()


def test_validate_rejects_crash_degrade_overlap_on_one_instance():
    """Regression: a crash and a gray failure cannot hit the same
    instance at the same time — the injector's plain set/restore of the
    CPU slowdown (and the crash path's down flag) rely on it."""
    from repro.faults import DegradeWindow

    plan = FaultPlan(
        crash_windows=(CrashWindow(start=1.0, end=3.0),),
        degrade_windows=(DegradeWindow(start=2.0, end=4.0),),
    )
    with pytest.raises(SimulationError, match="overlapping"):
        plan.validate()
    # Order of the pair must not matter.
    reordered = FaultPlan(
        crash_windows=(CrashWindow(start=2.0, end=4.0),),
        degrade_windows=(DegradeWindow(start=1.0, end=3.0),),
    )
    with pytest.raises(SimulationError, match="overlapping"):
        reordered.validate()


def test_validate_accepts_crash_and_degrade_on_different_instances():
    from repro.faults import DegradeWindow

    plan = FaultPlan(
        crash_windows=(CrashWindow(start=1.0, end=3.0),),
        degrade_windows=(
            DegradeWindow(start=2.0, end=4.0, instance=1),
            # Back-to-back with the crash on instance 0 is legal too.
            DegradeWindow(start=3.0, end=4.0),
        ),
    )
    assert plan.validate() is plan
