"""Tests for the deterministic fault-injection layer."""
