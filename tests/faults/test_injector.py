"""FaultInjector unit behaviour: streams, counters, hooks, stalls."""

import pytest

from repro.faults import FaultInjector, FaultPlan, StallWindow
from repro.faults import injector as injector_module
from repro.sim.core import Environment
from repro.sim.rng import SeedStreams


def make_injector(plan, seed=42):
    env = Environment()
    return FaultInjector(env, plan, SeedStreams(seed).fork("faults"))


def test_for_connection_none_when_data_path_clean():
    inj = make_injector(FaultPlan(client_abort_prob=0.5))
    assert inj.for_connection(0) is None


def test_for_client_none_without_abort_probability():
    inj = make_injector(FaultPlan(segment_loss_prob=0.5))
    assert inj.for_client(0) is None


def test_connection_streams_are_deterministic_per_index():
    plan = FaultPlan(segment_loss_prob=0.3, latency_spike_prob=0.3)
    one = make_injector(plan).for_connection(7)
    two = make_injector(plan).for_connection(7)
    draws_one = [one.chunk_delay(1448) for _ in range(50)]
    draws_two = [two.chunk_delay(1448) for _ in range(50)]
    assert draws_one == draws_two


def test_reconnects_get_fresh_streams():
    plan = FaultPlan(segment_loss_prob=0.3)
    inj = make_injector(plan)
    first = inj.for_connection(3)
    second = inj.for_connection(3)  # the slot's replacement connection
    assert first.where == "conn[3.0]"
    assert second.where == "conn[3.1]"
    assert [first.chunk_delay(1448) for _ in range(20)] != [
        second.chunk_delay(1448) for _ in range(20)
    ]


def test_zero_probability_faults_draw_no_randomness():
    # Only a count-based reset: every probabilistic knob is zero, so the
    # hook must not consume a single draw from its stream.
    plan = FaultPlan(reset_after_requests=100)
    conn = make_injector(plan).for_connection(0)
    before = conn.rng.getstate()
    assert conn.chunk_delay(1448) == 0.0
    assert conn.on_request_arrival() is False
    assert conn.rng.getstate() == before


def test_chunk_delay_components_accumulate():
    plan = FaultPlan(
        segment_loss_prob=1.0,
        segment_corrupt_prob=1.0,
        latency_spike_prob=1.0,
        latency_spike=0.007,
        rto=0.1,
    )
    inj = make_injector(plan)
    conn = inj.for_connection(0)
    assert conn.chunk_delay(1448) == pytest.approx(0.1 + 0.1 + 0.007)
    assert inj.segments_lost == 1
    assert inj.segments_corrupted == 1
    assert inj.latency_spikes == 1


def test_reset_after_requests_counts_arrivals():
    inj = make_injector(FaultPlan(reset_after_requests=3))
    conn = inj.for_connection(0)
    assert [conn.on_request_arrival() for _ in range(3)] == [False, False, True]
    assert inj.connection_resets == 1


def test_reset_after_bytes_counts_delivered_bytes():
    inj = make_injector(FaultPlan(reset_after_bytes=100))
    conn = inj.for_connection(0)
    assert conn.on_bytes_delivered(60) is False
    assert conn.on_bytes_delivered(50) is True  # 110 >= 100
    assert inj.connection_resets == 1


def test_client_abort_hooks():
    inj = make_injector(FaultPlan(client_abort_prob=1.0, client_abort_delay=0.02))
    client = inj.for_client(5)
    assert client.abort_delay == 0.02
    assert client.should_abort() is True
    client.record_abort()
    assert inj.client_aborts == 1
    report = inj.report()
    assert report.client_aborts == 1
    assert report.events[-1].kind == "abort"
    assert report.events[-1].where == "client[5]"


def test_trace_is_capped_and_drops_are_counted(monkeypatch):
    monkeypatch.setattr(injector_module, "TRACE_CAP", 3)
    inj = make_injector(FaultPlan())
    for i in range(5):
        inj.record("loss", f"conn[{i}]")
    report = inj.report()
    assert len(report.events) == 3
    assert report.events_dropped == 2


def test_report_totals():
    inj = make_injector(FaultPlan(segment_loss_prob=1.0))
    conn = inj.for_connection(0)
    conn.chunk_delay(1448)
    conn.chunk_delay(1448)
    report = inj.report()
    assert report.segments_lost == 2
    assert report.total_faults == 2
    assert report == inj.report()  # frozen + value-comparable


def test_stall_window_delays_other_work(calib):
    from repro.cpu.scheduler import CPU

    def finish_time(with_stall):
        env = Environment()
        cpu = CPU(env, calib)
        if with_stall:
            plan = FaultPlan(server_stalls=(StallWindow(start=0.05, duration=0.2),))
            inj = FaultInjector(env, plan, SeedStreams(1).fork("faults"))
            inj.start_stalls(cpu)
        finished = []

        def probe():
            yield env.timeout(0.06)  # arrive mid-stall
            thread = cpu.thread("probe")
            yield thread.run(0.01, "user")
            thread.close()
            finished.append(env.now)

        env.process(probe())
        env.run(until=1.0)
        return finished[0]

    assert finish_time(with_stall=True) > finish_time(with_stall=False) + 0.05


def test_stall_is_counted_once_per_window(cpu, env, calib):
    plan = FaultPlan(
        server_stalls=(StallWindow(0.01, 0.02), StallWindow(0.05, 0.02))
    )
    inj = FaultInjector(env, plan, SeedStreams(1).fork("faults"))
    inj.start_stalls(cpu)
    env.run(until=0.2)
    assert inj.report().stall_windows == 2


# ----------------------------------------------------------------------
# Gray-failure degrade windows
# ----------------------------------------------------------------------

class _DegradeTarget:
    """The slice of the fault-target surface ``_degrade`` touches."""

    def __init__(self):
        class _Cpu:
            slowdown = 1.0

        self.cpu = _Cpu()


def test_degrade_window_stretches_and_restores_the_cpu():
    from repro.faults import DegradeWindow

    plan = FaultPlan(degrade_windows=(
        DegradeWindow(start=0.5, end=1.0, share=0.75),
    ))
    env = Environment()
    inj = FaultInjector(env, plan, SeedStreams(42).fork("faults"))
    target = _DegradeTarget()
    inj.start_degrades([target])
    samples = {}

    def sampler(env):
        yield env.timeout(0.25)
        samples["before"] = target.cpu.slowdown
        yield env.timeout(0.5)  # t=0.75, mid-window
        samples["during"] = target.cpu.slowdown
        yield env.timeout(0.5)  # t=1.25, after recovery
        samples["after"] = target.cpu.slowdown

    env.process(sampler(env))
    env.run()
    assert samples["before"] == 1.0
    # share=0.75 -> every burst stretched 4x while the window is open.
    assert samples["during"] == pytest.approx(4.0)
    assert samples["after"] == 1.0
    report = inj.report()
    assert report.degrade_windows == 1
    assert report.total_faults >= 1
    kinds = [event.kind for event in report.events]
    assert "degrade" in kinds and "recover" in kinds


def test_degrade_window_rejects_missing_instance():
    from repro.faults import DegradeWindow

    plan = FaultPlan(degrade_windows=(
        DegradeWindow(start=0.5, end=1.0, instance=3),
    ))
    env = Environment()
    inj = FaultInjector(env, plan, SeedStreams(42).fork("faults"))
    with pytest.raises(Exception):
        inj.start_degrades([_DegradeTarget()])
