"""End-to-end determinism guarantees of the fault layer.

Two properties are load-bearing for the chaos artifact:

* an *empty* FaultPlan is provably zero-impact — the run is bit-identical
  to one with no fault machinery attached at all;
* a faulty run is a pure function of (config, seed) — the same sweep
  produces the identical results (including the fault event trace) no
  matter how many worker processes regenerate it.
"""

import pytest

from repro.experiments.micro import MicroConfig, run_micro
from repro.experiments.parallel import SweepExecutor
from repro.faults import FaultPlan, StallWindow
from repro.servers.base import ServerLimits
from repro.workload.client import RetryPolicy

#: A short but eventful plan: every fault class fires within ~0.4s.
_BUSY_PLAN = FaultPlan(
    segment_loss_prob=0.05,
    segment_corrupt_prob=0.02,
    latency_spike_prob=0.10,
    latency_spike=0.005,
    reset_request_prob=0.01,
    client_abort_prob=0.05,
    client_abort_delay=0.010,
    server_stalls=(StallWindow(start=0.10, duration=0.03),),
    rto=0.050,
)

_RETRY = RetryPolicy(timeout=0.05, max_retries=2, backoff_base=0.005)


def _config(server="SingleT-Async", **kwargs):
    kwargs.setdefault("concurrency", 8)
    kwargs.setdefault("duration", 0.4)
    kwargs.setdefault("warmup", 0.05)
    return MicroConfig(server=server, **kwargs)


def test_empty_plan_is_bit_identical_to_no_plan():
    clean = run_micro(_config(fault_plan=None))
    empty = run_micro(_config(fault_plan=FaultPlan()))
    assert clean.report == empty.report
    assert clean.server_stats == empty.server_stats
    # A disabled plan instantiates no machinery at all.
    assert clean.faults is None and empty.faults is None


def test_armed_but_silent_plan_is_still_bit_identical():
    # The strong zero-impact claim: fault hooks ATTACHED to every
    # connection (counting requests, ready to reset) but never firing
    # must not shift a single event — no randomness drawn, delays +0.0.
    clean = run_micro(_config(fault_plan=None))
    silent = run_micro(_config(fault_plan=FaultPlan(reset_after_requests=10**9)))
    assert silent.report == clean.report
    assert silent.server_stats == clean.server_stats
    assert silent.faults is not None and silent.faults.total_faults == 0


def test_faulty_run_is_reproducible():
    config = _config(fault_plan=_BUSY_PLAN, retry=_RETRY)
    one = run_micro(config)
    two = run_micro(config)
    assert one.faults == two.faults
    assert one.report == two.report
    assert one.client_stats == two.client_stats
    assert one.faults.total_faults > 0  # the plan actually did something


def test_faults_actually_perturb_the_run():
    clean = run_micro(_config())
    faulty = run_micro(_config(fault_plan=_BUSY_PLAN, retry=_RETRY))
    assert faulty.report != clean.report


@pytest.mark.chaos
def test_chaos_sweep_identical_for_any_job_count():
    """Same seed + FaultPlan => identical traces for --jobs 1 and N."""
    points = {
        (server, plan_name): _config(
            server,
            fault_plan=plan,
            retry=_RETRY,
            limits=ServerLimits(max_inflight=12),
        )
        for server in ("SingleT-Async", "sTomcat-Sync")
        for plan_name, plan in (("busy", _BUSY_PLAN), ("clean", FaultPlan()))
    }
    serial = SweepExecutor("chaos-det", jobs=1, cache_dir=None).map_micro(points)
    fanned = SweepExecutor("chaos-det", jobs=2, cache_dir=None).map_micro(points)
    assert serial == fanned  # full MicroResult: report, stats, fault trace
    assert any(r.faults.total_faults > 0 for r in serial.values())
