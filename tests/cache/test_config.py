"""CacheConfig validation and the REPRO_CACHE kill switch."""

import pytest

from repro.cache import CACHE_TIER_ENV, CacheConfig, cache_tier_enabled
from repro.errors import ExperimentError

pytestmark = pytest.mark.cache


def test_default_config_validates():
    config = CacheConfig()
    assert config.validate() is config


@pytest.mark.parametrize(
    "kwargs",
    [
        {"policy": "write_back"},
        {"ttl": 0.0},
        {"ttl": -1.0},
        {"capacity": 0},
        {"l2_capacity": -1},
        {"l2_ttl": 0.0},
        {"l2_latency": -1.0e-6},
        {"l1_hit_cpu": -1.0e-6},
        {"write_ratio": -0.1},
        {"write_ratio": 1.5},
        {"keys_per_class": 0},
        {"prewarm_expiry": -1.0},
    ],
)
def test_invalid_settings_raise(kwargs):
    with pytest.raises(ExperimentError):
        CacheConfig(**kwargs).validate()


@pytest.mark.parametrize("value", ["0", "off", "no", "false", " FALSE ", "Off"])
def test_kill_switch_disables(monkeypatch, value):
    monkeypatch.setenv(CACHE_TIER_ENV, value)
    assert cache_tier_enabled() is False


@pytest.mark.parametrize("value", ["1", "on", "yes", ""])
def test_kill_switch_other_values_enable(monkeypatch, value):
    monkeypatch.setenv(CACHE_TIER_ENV, value)
    assert cache_tier_enabled() is True


def test_kill_switch_default_is_enabled(monkeypatch):
    monkeypatch.delenv(CACHE_TIER_ENV, raising=False)
    assert cache_tier_enabled() is True
