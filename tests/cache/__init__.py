"""Cache-tier tests (PR 6)."""
