"""CacheTier: fallback chain, fill policies, single-flight coalescing."""

import random

import pytest

from repro.cache import CacheConfig, CacheTier
from repro.cache.store import MISS
from repro.errors import ExperimentError
from repro.workload.rubbos import RUBBOS_INTERACTIONS, RubbosMix

pytestmark = pytest.mark.cache

#: keys_per_class=1 makes the key draw deterministic; write_ratio=0 keeps
#: the RNG out of the read path entirely.
_READ_CONFIG = dict(keys_per_class=1, write_ratio=0.0)


class FakeThread:
    """Stands in for a worker SimThread: costs become plain timeouts."""

    def __init__(self, env):
        self.env = env
        self.cpu_time = 0.0
        self.copied = []

    def run(self, duration):
        self.cpu_time += duration
        return self.env.timeout(duration)

    def syscall(self, bytes_copied=0, extra_kernel=0.0):
        self.copied.append(bytes_copied)
        return self.env.timeout(extra_kernel)


@pytest.fixture
def thread(env):
    return FakeThread(env)


def make_tier(env, calib, **kwargs):
    seed = kwargs.pop("seed", 0)
    return CacheTier(env, CacheConfig(**kwargs), random.Random(seed), calib)


def make_fetch(env, log, status="ok", delay=0.01):
    """A fake database round trip: logs its start time, returns status."""

    def fetch():
        log.append(env.now)
        yield env.timeout(delay)
        return status

    return fetch


def run_query(env, tier, thread, fetch, deadline=None, at=0.0, results=None):
    """Start one cached query as a process; outcomes append to results."""
    sink = results if results is not None else []

    def worker():
        if at > 0.0:
            yield env.timeout(at)
        status = yield from tier.query(thread, ("Q", 0), 1024, deadline, fetch)
        sink.append((status, env.now))

    env.process(worker())
    return sink


def test_miss_fetches_then_hit_serves_from_l1(env, calib, thread):
    tier = make_tier(env, calib, **_READ_CONFIG)
    log, results = [], []
    fetch = make_fetch(env, log)
    run_query(env, tier, thread, fetch, results=results)
    run_query(env, tier, thread, fetch, at=1.0, results=results)
    env.run()
    assert [status for status, _ in results] == ["ok", "ok"]
    assert log == [pytest.approx(2.0e-6)]  # one fetch, after the L1 probe
    assert tier.l1.hits == 1
    assert tier.fetches == 1
    assert tier.hit_ratio() == 0.5


def test_ttl_expiry_forces_refetch(env, calib, thread):
    tier = make_tier(env, calib, ttl=0.5, **_READ_CONFIG)
    log, results = [], []
    fetch = make_fetch(env, log)
    run_query(env, tier, thread, fetch, results=results)
    run_query(env, tier, thread, fetch, at=1.0, results=results)  # past TTL
    env.run()
    assert [status for status, _ in results] == ["ok", "ok"]
    assert len(log) == 2
    assert tier.l1.expired == 1


def test_lru_eviction_on_capacity(env, calib, thread):
    tier = make_tier(env, calib, capacity=1, **_READ_CONFIG)
    log = []
    fetch = make_fetch(env, log)

    def worker():
        yield from tier.query(thread, ("A", 0), 64, None, fetch)
        yield from tier.query(thread, ("B", 0), 64, None, fetch)  # evicts A
        yield from tier.query(thread, ("A", 0), 64, None, fetch)  # refetches

    env.process(worker())
    env.run()
    assert len(log) == 3
    assert tier.l1.evictions == 2


def test_l2_hit_promotes_to_l1_without_fetch(env, calib, thread):
    tier = make_tier(env, calib, l2_capacity=16, **_READ_CONFIG)
    tier.l2.put(("Q", 0, 0), 1024, expires_at=100.0)
    log, results = [], []
    run_query(env, tier, thread, make_fetch(env, log), results=results)
    env.run()
    assert results[0][0] == "ok"
    assert log == []  # the database was never touched
    assert thread.copied == [1024]  # result copied out of the shared tier
    assert tier.l1.get(("Q", 0, 0), env.now) == 1024  # promoted
    assert tier.l2.hits == 1


def test_fetch_failure_fills_nothing(env, calib, thread):
    tier = make_tier(env, calib, **_READ_CONFIG)
    log, results = [], []
    fetch = make_fetch(env, log, status="expired")
    run_query(env, tier, thread, fetch, results=results)
    run_query(env, tier, thread, fetch, at=1.0, results=results)
    env.run()
    assert [status for status, _ in results] == ["expired", "expired"]
    assert len(log) == 2  # nothing cached, both queries fetched
    assert tier.l1.get(("Q", 0, 0), env.now) is MISS


def test_single_flight_coalesces_concurrent_misses(env, calib, thread):
    tier = make_tier(env, calib, **_READ_CONFIG)
    log, results = [], []
    fetch = make_fetch(env, log, delay=0.01)
    run_query(env, tier, thread, fetch, results=results)
    run_query(env, tier, thread, fetch, at=0.001, results=results)
    run_query(env, tier, thread, fetch, at=0.002, results=results)
    env.run()
    assert [status for status, _ in results] == ["ok", "ok", "ok"]
    assert len(log) == 1  # one leader fetch served all three
    assert tier.flights == 1
    assert tier.coalesced == 2
    assert not tier._flights  # table drained
    # Followers resolve when the leader's fill lands, not earlier.
    assert results[1][1] >= log[0] + 0.01


def test_without_single_flight_every_miss_fetches(env, calib, thread):
    tier = make_tier(env, calib, single_flight=False, **_READ_CONFIG)
    log, results = [], []
    fetch = make_fetch(env, log, delay=0.01)
    run_query(env, tier, thread, fetch, results=results)
    run_query(env, tier, thread, fetch, at=0.001, results=results)
    env.run()
    assert [status for status, _ in results] == ["ok", "ok"]
    assert len(log) == 2  # duplicate fetches: the stampede amplification
    assert tier.coalesced == 0


def test_follower_bounded_by_deadline(env, calib, thread):
    tier = make_tier(env, calib, **_READ_CONFIG)
    log, results = [], []
    fetch = make_fetch(env, log, delay=1.0)  # slow leader
    run_query(env, tier, thread, fetch, results=results)
    run_query(env, tier, thread, fetch, at=0.001, deadline=0.1, results=results)
    env.run()
    statuses = dict((round(t, 6), s) for s, t in results)
    assert statuses[0.1] == "expired"  # follower gave up at its deadline
    assert tier.flight_timeouts == 1
    assert len(log) == 1
    assert ("ok", pytest.approx(log[0] + 1.0)) in [
        (s, t) for s, t in results if s == "ok"
    ]


def test_follower_with_spent_deadline_expires_immediately(env, calib, thread):
    tier = make_tier(env, calib, **_READ_CONFIG)
    log, results = [], []
    fetch = make_fetch(env, log, delay=1.0)
    run_query(env, tier, thread, fetch, results=results)
    run_query(env, tier, thread, fetch, at=0.5, deadline=0.5, results=results)
    env.run()
    expired = [t for s, t in results if s == "expired"]
    # No timer was even created: the budget was already spent post-probe.
    assert expired == [pytest.approx(0.5, abs=1e-4)]
    assert tier.flight_timeouts == 1


def test_flight_resolves_even_when_fetch_raises(env, calib, thread):
    tier = make_tier(env, calib, **_READ_CONFIG)
    results, errors = [], []

    def broken_fetch():
        yield env.timeout(0.01)
        raise RuntimeError("db exploded")

    def leader():
        try:
            yield from tier.query(thread, ("Q", 0), 64, None, broken_fetch)
        except RuntimeError as exc:
            errors.append(exc)

    env.process(leader())
    run_query(env, tier, thread, broken_fetch, at=0.001, results=results)
    env.run()
    assert len(errors) == 1
    # The follower was unparked with the failure status, and the flight
    # table did not leak the dead flight.
    assert [status for status, _ in results] == ["rejected"]
    assert not tier._flights


def test_cache_aside_write_invalidates_both_levels(env, calib, thread):
    tier = make_tier(
        env, calib, policy="cache_aside", write_ratio=1.0,
        keys_per_class=1, l2_capacity=16,
    )
    key = ("Q", 0, 0)
    tier.l1.put(key, 64, expires_at=100.0)
    tier.l2.put(key, 64, expires_at=100.0)
    log, results = [], []
    run_query(env, tier, thread, make_fetch(env, log), results=results)
    env.run()
    assert results[0][0] == "ok"
    assert len(log) == 1  # the write itself is a DB round trip
    assert tier.writes == 1
    assert tier.invalidations == 1
    # Cache-aside leaves the refill to the next read.
    assert tier.l1.peek_expiry(key) is None
    assert tier.l2.peek_expiry(key) is None


def test_write_through_refills_after_db_round(env, calib, thread):
    tier = make_tier(
        env, calib, policy="write_through", write_ratio=1.0,
        keys_per_class=1, ttl=10.0,
    )
    key = ("Q", 0, 0)
    log, results = [], []
    run_query(env, tier, thread, make_fetch(env, log, delay=0.01), results=results)
    env.run()
    assert results[0][0] == "ok"
    assert tier.writes == 1
    assert tier.invalidations == 0
    # Filled at fetch completion: expiry = completion time + ttl.
    assert tier.l1.peek_expiry(key) == pytest.approx(results[0][1] + 10.0)


def test_prewarm_fills_full_catalog(env, calib):
    tier = make_tier(env, calib, keys_per_class=2, l2_capacity=4096,
                     capacity=4096, prewarm_expiry=6.0)
    count = tier.prewarm_from_mix(RubbosMix())
    slots = sum(len(i.queries) for i in RUBBOS_INTERACTIONS)
    assert count == slots * 2
    assert tier.l1.size == count
    assert tier.l2.size == count
    # All entries share the synchronized mass-expiry instant.
    assert tier.l1.peek_expiry(("ViewStory", 0, 0)) == 6.0
    assert tier.l1.peek_expiry(("ViewStory", 1, 1)) == 6.0


def test_prewarm_requires_interaction_catalog(env, calib):
    tier = make_tier(env, calib)
    with pytest.raises(ExperimentError):
        tier.prewarm_from_mix(object())


def test_counters_shape(env, calib, thread):
    tier = make_tier(env, calib, l2_capacity=8, **_READ_CONFIG)
    run_query(env, tier, thread, make_fetch(env, []))
    env.run()
    counters = tier.counters()
    assert counters["cache_fetches"] == 1.0
    assert counters["cache_l1_misses"] == 1.0
    assert "cache_l2_hits" in counters
    assert all(isinstance(v, float) for v in counters.values())
    # Without L2 the l2 keys are absent entirely (digest stability).
    no_l2 = make_tier(env, calib, **_READ_CONFIG)
    assert not any(k.startswith("cache_l2") for k in no_l2.counters())
