"""The cache tier's zero-impact contract, proven three ways.

A run with (a) no cache config, (b) ``CacheConfig(enabled=False)`` and
(c) a fully enabled config under ``REPRO_CACHE=0`` must all be
*bit-identical*: same report floats, same counters, same kernel event
count — no tier object, no extra RNG fork consumption, no events.
"""

import dataclasses

import pytest

from repro.cache import CACHE_TIER_ENV, CacheConfig
from repro.ntier.topology import NTierConfig, run_ntier

pytestmark = pytest.mark.cache

_BASE = dict(
    tomcat_variant="async",
    users=15,
    think_mean=0.5,
    duration=1.0,
    warmup=0.4,
    timeline_bucket=0.25,
    seed=9,
)

#: A config that visibly changes behaviour when the tier is live.
_CACHE = CacheConfig(ttl=0.5, capacity=64, keys_per_class=2, prewarm=True)


def _fingerprint(result):
    return (
        dataclasses.asdict(result.report),
        sorted(result.server_stats.items()),
        sorted(result.client_stats.items()),
        sorted(result.resilience.items()),
        sorted(result.cache_stats.items()),
    )


@pytest.fixture
def baseline(monkeypatch):
    monkeypatch.setenv(CACHE_TIER_ENV, "1")
    return _fingerprint(run_ntier(NTierConfig(**_BASE)))


def test_disabled_config_is_bit_identical(monkeypatch, baseline):
    monkeypatch.setenv(CACHE_TIER_ENV, "1")
    result = run_ntier(NTierConfig(cache=CacheConfig(enabled=False), **_BASE))
    assert _fingerprint(result) == baseline
    assert result.cache_stats == {}


def test_kill_switch_is_bit_identical(monkeypatch, baseline):
    monkeypatch.setenv(CACHE_TIER_ENV, "0")
    result = run_ntier(NTierConfig(cache=_CACHE, **_BASE))
    assert _fingerprint(result) == baseline
    assert result.cache_stats == {}


def test_enabled_tier_actually_engages(monkeypatch, baseline):
    """Sanity for the contract above: the same cache config *with* the
    tier live must diverge from the baseline and report counters."""
    monkeypatch.setenv(CACHE_TIER_ENV, "1")
    result = run_ntier(NTierConfig(cache=_CACHE, **_BASE))
    assert result.cache_stats  # counters present
    assert result.cache_stats["cache_l1_hits"] > 0
    assert _fingerprint(result) != baseline
