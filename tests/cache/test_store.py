"""TtlLruStore: TTL + LRU semantics driven by caller-supplied sim time."""

import pytest

from repro.cache.store import MISS, TtlLruStore

pytestmark = pytest.mark.cache


def test_capacity_validation():
    with pytest.raises(ValueError):
        TtlLruStore(0)


def test_get_miss_and_hit():
    store = TtlLruStore(4)
    assert store.get("k", now=0.0) is MISS
    store.put("k", 42, expires_at=10.0)
    assert store.get("k", now=1.0) == 42
    assert (store.hits, store.misses) == (1, 1)


def test_cached_falsy_values_are_hits():
    store = TtlLruStore(4)
    store.put("zero", 0, expires_at=10.0)
    assert store.get("zero", now=1.0) == 0
    assert store.get("zero", now=1.0) is not MISS


def test_lazy_expiry_counts_and_drops():
    store = TtlLruStore(4)
    store.put("k", 42, expires_at=5.0)
    # Expiry boundary is inclusive: at exactly expires_at the entry is gone.
    assert store.get("k", now=5.0) is MISS
    assert (store.expired, store.misses) == (1, 1)
    assert store.size == 0


def test_put_refreshes_expiry():
    store = TtlLruStore(4)
    store.put("k", 1, expires_at=5.0)
    store.put("k", 2, expires_at=50.0)
    assert store.get("k", now=10.0) == 2
    assert store.peek_expiry("k") == 50.0


def test_lru_eviction_order_respects_recency():
    store = TtlLruStore(2)
    store.put("a", 1, expires_at=100.0)
    store.put("b", 2, expires_at=100.0)
    assert store.get("a", now=0.0) == 1  # refresh "a": "b" is now LRU
    store.put("c", 3, expires_at=100.0)
    assert store.evictions == 1
    assert store.get("b", now=0.0) is MISS
    assert store.get("a", now=0.0) == 1
    assert store.get("c", now=0.0) == 3


def test_refreshing_existing_key_does_not_evict():
    store = TtlLruStore(2)
    store.put("a", 1, expires_at=100.0)
    store.put("b", 2, expires_at=100.0)
    store.put("a", 9, expires_at=100.0)  # refresh, store already full
    assert store.evictions == 0
    assert store.size == 2


def test_invalidate():
    store = TtlLruStore(4)
    store.put("k", 1, expires_at=100.0)
    assert store.invalidate("k") is True
    assert store.invalidate("k") is False
    assert store.get("k", now=0.0) is MISS


def test_peek_expiry_touches_nothing():
    store = TtlLruStore(4)
    assert store.peek_expiry("k") is None
    store.put("k", 1, expires_at=7.5)
    assert store.peek_expiry("k") == 7.5
    assert (store.hits, store.misses) == (0, 0)
