"""Calibration constants and derived helpers."""

import pytest

from repro.calibration import Calibration, DEFAULT_CALIBRATION, default_calibration
from repro.errors import CalibrationError


def test_default_is_valid():
    DEFAULT_CALIBRATION.validate()


def test_default_calibration_returns_shared_instance():
    assert default_calibration() is DEFAULT_CALIBRATION


def test_with_overrides_returns_new_validated_instance():
    custom = default_calibration(cores=4)
    assert custom.cores == 4
    assert DEFAULT_CALIBRATION.cores == 1


def test_invalid_overrides_rejected():
    with pytest.raises(CalibrationError):
        default_calibration(cores=0)
    with pytest.raises(CalibrationError):
        default_calibration(context_switch_base=-1.0)
    with pytest.raises(CalibrationError):
        default_calibration(mss=0)
    with pytest.raises(CalibrationError):
        default_calibration(link_bandwidth=0)
    with pytest.raises(CalibrationError):
        default_calibration(netty_write_spin_threshold=0)


def test_context_switch_cost_monotone():
    calib = DEFAULT_CALIBRATION
    costs = [calib.context_switch_cost(n) for n in [1, 10, 100, 1000]]
    assert costs == sorted(costs)
    assert costs[0] >= calib.context_switch_base


def test_footprint_factor_free_below_threshold():
    calib = DEFAULT_CALIBRATION
    assert calib.thread_footprint_factor(calib.thread_footprint_free) == 1.0
    assert calib.thread_footprint_factor(1) == 1.0
    assert calib.thread_footprint_factor(1000) > 1.0


def test_request_cpu_cost_scales_with_size():
    calib = DEFAULT_CALIBRATION
    assert calib.request_cpu_cost(0) == calib.request_base_cost
    assert calib.request_cpu_cost(100_000) > calib.request_cpu_cost(100)


def test_syscall_cost_split():
    calib = DEFAULT_CALIBRATION
    user, system = calib.syscall_cost(1000)
    assert user == calib.syscall_user_cost
    assert system == pytest.approx(
        calib.syscall_kernel_cost + 1000 * calib.copy_cost_per_byte
    )


def test_tx_kernel_cost_segments():
    calib = DEFAULT_CALIBRATION
    assert calib.tx_kernel_cost(0) == 0.0
    assert calib.tx_kernel_cost(1) == calib.tcp_tx_cost_per_segment
    assert calib.tx_kernel_cost(calib.mss + 1) == 2 * calib.tcp_tx_cost_per_segment


def test_rtt_and_bdp():
    calib = DEFAULT_CALIBRATION
    assert calib.rtt == pytest.approx(2 * calib.lan_one_way_latency)
    assert calib.bdp(5e-3) == pytest.approx(calib.link_bandwidth * 2 * 5e-3)
    # BDP never drops below the LAN's own value.
    assert calib.bdp(0.0) == pytest.approx(calib.link_bandwidth * calib.rtt)


def test_describe_includes_key_constants():
    described = DEFAULT_CALIBRATION.describe()
    assert described["tcp_send_buffer_bytes"] == 16 * 1024
    assert described["cores"] == 1
    assert "netty_write_spin_threshold" in described


def test_frozen_dataclass():
    with pytest.raises(Exception):
        DEFAULT_CALIBRATION.cores = 2
