"""Documentation quality gate: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
            if inspect.isclass(obj):
                for attr_name, attr in vars(obj).items():
                    if attr_name.startswith("_"):
                        continue
                    if not inspect.isfunction(attr):
                        continue
                    if attr.__doc__ and attr.__doc__.strip():
                        continue
                    # An override inherits its contract's documentation.
                    inherited = any(
                        (getattr(base, attr_name, None) is not None
                         and getattr(getattr(base, attr_name), "__doc__", None))
                        for base in obj.__mro__[1:]
                    )
                    if not inherited:
                        undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, f"{module.__name__}: {undocumented}"
