"""Golden shard-parity rows: sharded runs reproduce serial digests.

The sharded kernel's whole contract is that partitioning a run into
forked kernel islands with conservative sync changes *nothing* about
the results — same report floats, same counters, same digests.  These
rows pin that contract over the accepted partition envelope:

* a classic micro workload with think time and added latency (the cut
  carries both directions of every request);
* a *demand-grown* cohort over a passive front (dynamic ``conn``
  messages cross the cut mid-run);
* the 3-tier chain at 2 and 4 islands with nonzero client latency
  (every pool cut is exercised);
* a provisioned (``eager_connections``) cohort bundle through the full
  chain — the million-client scouting shape in miniature.

Each row must match the serial digest *and* prove the sharded kernel
actually engaged (``result.shard_events`` non-empty) — a silent serial
fallback would make the parity vacuous.  The sweep-executor row runs
the same matrix under ``REPRO_SHARDS=2`` with ``jobs=4``, proving the
process fan-out and the island fan-out compose.

The module carries the ``tcpfast`` marker too: the tcpfast CI tier
re-runs it under ``REPRO_TCP_FASTPATH=0``, where serial rows take the
per-segment TCP path while cut edges still force the flow fast path —
pinning the cross-path equivalence the cut protocol relies on.
"""

from __future__ import annotations

import pytest

from repro.cohort import CohortConfig
from repro.experiments.micro import MicroConfig, run_micro
from repro.experiments.parallel import SweepExecutor
from repro.ntier.topology import NTierConfig, run_ntier

from tests.test_kernel_determinism_golden import _digest_result

pytestmark = [pytest.mark.shard, pytest.mark.tcpfast]

_MICRO_CONFIGS = {
    # Think time + added latency: the cut carries request and response
    # serialization on top of the base RTT.
    "think-latency": MicroConfig(
        "sTomcat-Async", 48, duration=1.2, warmup=0.3,
        added_latency=0.002, think_mean=5.0,
    ),
    # Demand-grown cohort bundle over a passive (selector-only) front:
    # connection creation crosses the cut as dynamic "conn" messages.
    "cohort-dynamic": MicroConfig(
        "SingleT-Async", 5000, duration=0.8, warmup=0.2, think_mean=30.0,
        cohort=CohortConfig(max_inflight=128, first_think=True),
    ),
}

_NTIER_CONFIGS = {
    # Nonzero client latency so all three pool cuts have distinct
    # lookahead; 4 shards slices [clients | apache | tomcat | mysql].
    "latency": NTierConfig(
        "async", users=100, duration=2.0, warmup=0.8, client_latency=0.005,
    ),
    # Provisioned cohort bundle through the full chain: the 1M scouting
    # shape in miniature (eager_connections shards over the threaded
    # apache front).
    "cohort-eager": NTierConfig(
        "async", users=5000, duration=2.0, warmup=0.8, think_mean=4.0,
        client_latency=0.005,
        cohort=CohortConfig(
            max_inflight=128, first_think=True, eager_connections=True
        ),
    ),
}


def _micro_digests(shards: int) -> dict:
    """Digest every micro row at ``shards``, asserting engagement."""
    with pytest.MonkeyPatch.context() as patch:
        patch.setenv("REPRO_COHORT", "1")
        patch.setenv("REPRO_SHARD", "1")
        digests = {}
        for name, config in _MICRO_CONFIGS.items():
            result = run_micro(config, shards=shards)
            if shards > 1:
                assert len(result.shard_events) == 2, (
                    f"{name}: expected 2 islands, the sharded kernel "
                    "fell back to serial"
                )
            else:
                assert not result.shard_events
            digests[name] = _digest_result(result)
        return digests


def _ntier_digests(shards: int) -> dict:
    """Digest every n-tier row at ``shards``, asserting engagement."""
    with pytest.MonkeyPatch.context() as patch:
        patch.setenv("REPRO_COHORT", "1")
        patch.setenv("REPRO_SHARD", "1")
        digests = {}
        for name, config in _NTIER_CONFIGS.items():
            result = run_ntier(config, shards=shards)
            if shards > 1:
                assert len(result.shard_events) == shards, (
                    f"{name}: expected {shards} islands, got "
                    f"{len(result.shard_events)}"
                )
            else:
                assert not result.shard_events
            digests[name] = _digest_result(result)
        return digests


@pytest.fixture(scope="module")
def serial_micro() -> dict:
    return _micro_digests(shards=1)


@pytest.fixture(scope="module")
def serial_ntier() -> dict:
    return _ntier_digests(shards=1)


def test_micro_sharded_matches_serial(serial_micro):
    assert _micro_digests(shards=2) == serial_micro


def test_ntier_two_islands_match_serial(serial_ntier):
    assert _ntier_digests(shards=2) == serial_ntier


def test_ntier_four_islands_match_serial(serial_ntier):
    assert _ntier_digests(shards=4) == serial_ntier


def _sweep_digests(jobs: int, shards: str | None) -> dict:
    """Digest the full matrix through the sweep executor.

    The executor derives a per-point seed (a pure function of the point,
    not of fan-out), so its rows are compared executor-to-executor, not
    against the direct-run fixtures above.
    """
    with pytest.MonkeyPatch.context() as patch:
        patch.setenv("REPRO_COHORT", "1")
        patch.setenv("REPRO_SHARD", "1")
        if shards is None:
            patch.delenv("REPRO_SHARDS", raising=False)
        else:
            patch.setenv("REPRO_SHARDS", shards)
        executor = SweepExecutor("shard-golden", scale=1.0, jobs=jobs,
                                 cache_dir=None)
        results = dict(executor.map_micro(dict(_MICRO_CONFIGS)))
        results.update(executor.map_ntier(dict(_NTIER_CONFIGS)))
    for name, result in results.items():
        engaged = bool(result.shard_events)
        assert engaged == (shards is not None), (
            f"{name}: sharding engaged={engaged}, expected the opposite"
        )
    return {name: _digest_result(r) for name, r in results.items()}


def test_sweep_fanout_composes_with_sharding():
    """REPRO_SHARDS=2 under jobs=4: worker processes shard their points.

    The sweep executor forks sweep points over worker processes; each
    worker then forks its own island processes.  The digests must still
    be the serial-executor ones — the two fan-outs are independent
    layers.
    """
    assert _sweep_digests(jobs=4, shards="2") == _sweep_digests(
        jobs=1, shards=None
    )
