"""Exception hierarchy sanity."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception) and obj is not errors.ReproError:
            assert issubclass(obj, errors.ReproError), name


def test_interrupt_error_carries_cause():
    exc = errors.InterruptError("why")
    assert exc.cause == "why"


def test_simulation_errors_grouped():
    assert issubclass(errors.EventLifecycleError, errors.SimulationError)
    assert issubclass(errors.ProcessError, errors.SimulationError)
    assert issubclass(errors.StopSimulation, errors.SimulationError)


def test_network_errors_grouped():
    assert issubclass(errors.ConnectionClosedError, errors.NetworkError)
    assert issubclass(errors.BufferError_, errors.NetworkError)


def test_catching_repro_error_catches_everything():
    with pytest.raises(errors.ReproError):
        raise errors.CalibrationError("bad constant")
    with pytest.raises(errors.ReproError):
        raise errors.WorkloadError("bad mix")
