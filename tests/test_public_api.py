"""Public API surface checks."""

import importlib

import pytest

import repro


def test_version_is_set():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_subpackage_all_exports_resolve():
    for module_name in [
        "repro.sim", "repro.cpu", "repro.net", "repro.servers", "repro.core",
        "repro.workload", "repro.ntier", "repro.metrics", "repro.experiments",
        "repro.realnet", "repro.faults", "repro.resilience",
    ]:
        module = importlib.import_module(module_name)
        assert module.__all__, module_name
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name}"


def test_paper_server_names_all_runnable():
    """The six paper architectures plus the full Tomcat pair and the two
    extensions are all constructible through the registry."""
    from repro.experiments.micro import SERVER_FACTORIES

    expected = {
        "sTomcat-Sync", "sTomcat-Async", "sTomcat-Async-Fix", "SingleT-Async",
        "NettyServer", "HybridNetty", "TomcatSync", "TomcatAsync",
        "Staged-SEDA", "N-copy",
    }
    assert expected == set(SERVER_FACTORIES)


def test_architecture_labels_are_unique():
    from repro.experiments.micro import MicroConfig, SERVER_FACTORIES, make_server
    from repro.calibration import default_calibration
    from repro.cpu.scheduler import CPU
    from repro.sim.core import Environment

    labels = set()
    for name in SERVER_FACTORIES:
        env = Environment()
        cpu = CPU(env, default_calibration())
        server = make_server(name, env, cpu, MicroConfig(server=name, concurrency=4))
        labels.add(server.architecture)
    assert len(labels) == len(SERVER_FACTORIES)
