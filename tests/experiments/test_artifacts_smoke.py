"""Smoke tests of artifact runners at minimal scale.

Only the cheap artifacts run here (the expensive sweeps are exercised by
the benchmark suite); these verify the runner plumbing end-to-end: rows
are produced, headers match, and the shape checks evaluate.
"""

import pytest

from repro.experiments.artifacts_hybrid import ablation_send_buffer
from repro.experiments.artifacts_micro import tab4_write_spin
from repro.experiments.registry import EXPERIMENTS


def test_tab4_artifact_structure():
    result = tab4_write_spin(scale=0.1)
    assert result.artifact == "tab4"
    assert len(result.rows) == 3
    assert all(len(row) == len(result.headers) for row in result.rows)
    assert result.checks
    assert result.all_passed


def test_sendbuf_ablation_structure():
    result = ablation_send_buffer(scale=0.1)
    assert result.artifact == "ablC"
    assert len(result.rows) == 5
    assert result.all_passed


def test_every_artifact_has_a_benchmark_file():
    import pathlib

    bench_dir = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"
    text = "\n".join(p.read_text() for p in bench_dir.glob("test_bench_*.py"))
    for artifact in EXPERIMENTS:
        assert f'regenerate("{artifact}")' in text, artifact


def test_registry_titles_and_costs():
    for artifact, spec in EXPERIMENTS.items():
        assert spec.artifact == artifact
        assert spec.title
        assert spec.cost in ("seconds", "minutes")
        assert callable(spec.runner)
