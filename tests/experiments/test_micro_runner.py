"""Micro-benchmark runner and registry."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.micro import (
    MicroConfig,
    SERVER_FACTORIES,
    make_server,
    run_micro,
    suggest_timing,
)
from repro.experiments.registry import EXPERIMENTS, bench_scale, get_experiment
from repro.workload.mixes import BimodalMix


def quick(server, **kwargs):
    defaults = dict(server=server, concurrency=4, response_size=102,
                    duration=0.4, warmup=0.1)
    defaults.update(kwargs)
    return MicroConfig(**defaults)


def test_unknown_server_rejected(env):
    with pytest.raises(ExperimentError):
        run_micro(quick("ApacheSpark"))


def test_invalid_concurrency_rejected():
    with pytest.raises(ExperimentError):
        run_micro(quick("SingleT-Async", concurrency=0))


def test_duration_must_exceed_warmup():
    with pytest.raises(ExperimentError):
        run_micro(quick("SingleT-Async", duration=0.1, warmup=0.2))


@pytest.mark.parametrize("server", sorted(SERVER_FACTORIES))
def test_every_registered_server_runs(server):
    # Cached: re-simulated whenever the package sources change.
    from repro.experiments.parallel import cached_micro

    result = cached_micro(quick(server), label="micro-smoke")
    assert result.throughput > 0
    assert result.report.completed > 0


def test_same_seed_same_result():
    a = run_micro(quick("SingleT-Async", seed=5))
    b = run_micro(quick("SingleT-Async", seed=5))
    assert a.throughput == b.throughput
    assert a.report.response_time_mean == b.report.response_time_mean


def test_mix_overrides_response_size():
    result = run_micro(quick("SingleT-Async", mix=BimodalMix(0.5, 100, 200)))
    assert result.report.completed > 0
    assert set(result.report.per_kind_throughput) <= {"light", "heavy"}


def test_hybrid_stats_included():
    result = run_micro(quick("HybridNetty"))
    assert "light_path_requests" in result.server_stats
    assert "heavy_path_requests" in result.server_stats


def test_suggest_timing_scales_with_concurrency():
    d1, w1 = suggest_timing(1, 102)
    d2, w2 = suggest_timing(3200, 100 * 1024)
    assert d2 > d1
    assert w2 > w1
    assert d1 > w1 and d2 > w2


def test_workers_default_capped():
    assert MicroConfig(server="x", concurrency=1000).workers == 16
    assert MicroConfig(server="x", concurrency=4).workers == 4
    assert MicroConfig(server="x", concurrency=1000, workers_override=3).workers == 3
    assert MicroConfig(server="x", concurrency=1000).tomcat_workers == 32


def test_registry_contains_all_paper_artifacts():
    for artifact in ["fig1", "fig2", "tab1", "tab2", "fig4", "tab3", "tab4",
                     "fig6", "fig7", "fig9", "fig11"]:
        assert artifact in EXPERIMENTS


def test_registry_lookup_unknown():
    with pytest.raises(ExperimentError):
        get_experiment("fig99")


def test_bench_scale_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
    assert bench_scale() == 0.5
    monkeypatch.setenv("REPRO_BENCH_SCALE", "abc")
    with pytest.raises(ExperimentError):
        bench_scale()
    monkeypatch.setenv("REPRO_BENCH_SCALE", "3.0")
    with pytest.raises(ExperimentError):
        bench_scale()
    monkeypatch.delenv("REPRO_BENCH_SCALE")
    assert bench_scale() == 1.0


def test_make_server_returns_architecture(env, cpu):
    config = quick("NettyServer")
    server = make_server("NettyServer", env, cpu, config)
    assert server.architecture == "NettyServer"
