"""ArtifactResult containers and report rendering."""

import pytest

from repro.experiments.report import render_artifact, render_markdown, render_table
from repro.experiments.results import ArtifactResult, ShapeCheck


def sample_result():
    result = ArtifactResult(
        artifact="figX",
        title="A sample figure",
        paper_claim="numbers go up",
        headers=["server", "rps"],
    )
    result.add_row("alpha", 1234.5)
    result.add_row("beta", 9.87)
    result.check("alpha wins", True, "1234 > 9")
    result.check("beta wins", False, "no")
    result.note("synthetic data")
    return result


def test_add_row_width_checked():
    result = ArtifactResult("a", "t", "c", headers=["x", "y"])
    with pytest.raises(ValueError):
        result.add_row(1)


def test_check_records_and_returns():
    result = ArtifactResult("a", "t", "c")
    check = result.check("works", True)
    assert isinstance(check, ShapeCheck)
    assert result.all_passed


def test_failed_checks_listed():
    result = sample_result()
    assert not result.all_passed
    assert [c.name for c in result.failed_checks] == ["beta wins"]


def test_shape_check_str():
    assert "PASS" in str(ShapeCheck("x", True))
    assert "FAIL" in str(ShapeCheck("x", False, "why"))
    assert "why" in str(ShapeCheck("x", False, "why"))


def test_render_table_alignment():
    text = render_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "name" in lines[0]
    assert set(lines[1]) <= {"-", " "}


def test_render_table_formats_floats():
    text = render_table(["v"], [[12345.678], [float("nan")], [0.00123]])
    assert "12,346" in text
    assert "-" in text
    assert "0.00123" in text


def test_render_artifact_contains_everything():
    text = render_artifact(sample_result())
    assert "FIGX" in text
    assert "numbers go up" in text
    assert "alpha" in text
    assert "[PASS]" in text and "[FAIL]" in text
    assert "note: synthetic data" in text


def test_render_markdown_table_and_checks():
    text = render_markdown(sample_result())
    assert text.startswith("### figX")
    assert "| server | rps |" in text
    assert "- [x] alpha wins" in text
    assert "- [ ] beta wins" in text


def test_breaker_totals_sums_by_suffix():
    from repro.experiments.results import breaker_totals

    totals = breaker_totals({
        "apache-tomcat_opens": 2.0,
        "tomcat-mysql_opens": 3.0,
        "compose-text_fast_failures": 5.0,
        "compose-media_closes": 1.0,
        "budget_denied": 99.0,  # not a breaker counter
    })
    assert totals == {
        "breaker_opens": 5.0,
        "breaker_closes": 1.0,
        "breaker_fast_failures": 5.0,
    }


def test_breaker_totals_empty_resilience_is_all_zero():
    from repro.experiments.results import breaker_totals

    assert set(breaker_totals({}).values()) == {0.0}


class _StubReport:
    rejected = 2
    failed = 1


class _StubRun:
    report = _StubReport()
    client_stats = {"timeouts": 4.0}
    server_stats = {
        "compose_expired": 3.0,
        "text_expired": 2.0,
        "compose_aborted": 1.0,
        "text_completed": 50.0,
    }
    resilience = {
        "compose-text_opens": 2.0,
        "compose-media_opens": 1.0,
        "compose-text_fast_failures": 6.0,
        "budget_granted": 10.0,
        "budget_denied": 3.0,
    }


def test_add_run_counters_is_topology_agnostic():
    result = ArtifactResult("a", "t", "c")
    result.add_run_counters(_StubRun())
    result.add_run_counters(_StubRun())  # accumulates across runs
    assert result.counters["timeouts"] == 8.0
    assert result.counters["rejected"] == 4.0
    assert result.counters["failed"] == 2.0
    assert result.counters["expired"] == 10.0
    assert result.counters["aborted"] == 2.0
    assert result.counters["breaker_opens"] == 6.0
    assert result.counters["breaker_fast_failures"] == 12.0
    assert result.counters["budget_granted"] == 20.0
    assert result.counters["budget_denied"] == 6.0
    assert "pool_evictions" not in result.counters
