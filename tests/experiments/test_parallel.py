"""The parallel sweep executor: determinism, caching, and fallbacks."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import parallel
from repro.experiments.micro import MicroConfig, run_micro
from repro.experiments.parallel import (
    SweepExecutor,
    cached_call,
    cached_micro,
    clear_cache,
    point_digest,
    resolve_jobs,
)
from repro.experiments.registry import run_experiment
from repro.net.messages import Request
from repro.workload.mixes import RequestMix


def _tiny(server="SingleT-Async", **kwargs):
    kwargs.setdefault("concurrency", 4)
    kwargs.setdefault("duration", 0.25)
    kwargs.setdefault("warmup", 0.05)
    return MicroConfig(server=server, **kwargs)


def _tiny_points():
    return {
        (server, concurrency): _tiny(server, concurrency=concurrency)
        for server in ("SingleT-Async", "sTomcat-Sync")
        for concurrency in (2, 4)
    }


# ----------------------------------------------------------------------
# resolve_jobs
# ----------------------------------------------------------------------
def test_resolve_jobs_defaults_to_serial(monkeypatch):
    monkeypatch.delenv(parallel.JOBS_ENV, raising=False)
    assert resolve_jobs(None) == 1


def test_resolve_jobs_reads_environment(monkeypatch):
    monkeypatch.setenv(parallel.JOBS_ENV, "3")
    assert resolve_jobs(None) == 3


def test_resolve_jobs_explicit_overrides_environment(monkeypatch):
    monkeypatch.setenv(parallel.JOBS_ENV, "3")
    assert resolve_jobs(2) == 2
    assert resolve_jobs("5") == 5


def test_resolve_jobs_auto_means_cpu_count(monkeypatch):
    import os

    monkeypatch.delenv(parallel.JOBS_ENV, raising=False)
    assert resolve_jobs("auto") == (os.cpu_count() or 1)


@pytest.mark.parametrize("bad", ["zero", "", "-2", 0, -1])
def test_resolve_jobs_rejects_nonsense(monkeypatch, bad):
    monkeypatch.delenv(parallel.JOBS_ENV, raising=False)
    with pytest.raises(ExperimentError):
        resolve_jobs(bad)


# ----------------------------------------------------------------------
# point_digest
# ----------------------------------------------------------------------
def test_point_digest_is_stable_for_equal_configs():
    assert point_digest(_tiny()) == point_digest(_tiny())


def test_point_digest_sees_every_field():
    base = _tiny()
    assert point_digest(base) != point_digest(_tiny(seed=2))
    assert point_digest(base) != point_digest(_tiny(concurrency=8))
    assert point_digest(base) != point_digest(_tiny(added_latency=1e-3))


def test_point_digest_covers_mix_objects():
    class TwoSizes(RequestMix):
        def __init__(self, heavy):
            self.heavy = heavy

        def sample(self, env, rng):
            return Request(env, kind="page", response_size=self.heavy)

        def kinds(self):
            return ["page"]

    assert point_digest(_tiny(mix=TwoSizes(100))) != point_digest(
        _tiny(mix=TwoSizes(200))
    )


# ----------------------------------------------------------------------
# Determinism: parallel == serial, order-independent
# ----------------------------------------------------------------------
def test_parallel_results_identical_to_serial():
    serial = SweepExecutor("det", jobs=1, cache_dir=None)
    fanned = SweepExecutor("det", jobs=4, cache_dir=None)
    a = serial.map_micro(_tiny_points())
    b = fanned.map_micro(_tiny_points())
    assert a == b
    assert fanned.stats.computed == len(a)
    assert fanned.stats.cache_hits == 0


def test_results_do_not_depend_on_point_order():
    points = _tiny_points()
    reversed_points = dict(reversed(list(points.items())))
    a = SweepExecutor("order", jobs=1, cache_dir=None).map_micro(points)
    b = SweepExecutor("order", jobs=1, cache_dir=None).map_micro(reversed_points)
    assert a == b
    assert list(b) == list(reversed_points)  # input ordering is preserved


def test_derived_seeds_separate_artifacts():
    """The same config simulates under different seeds in different sweeps."""
    config = _tiny()
    one = SweepExecutor("art-one", jobs=1, cache_dir=None)
    two = SweepExecutor("art-two", jobs=1, cache_dir=None)
    assert one._prepare("micro", "k", config).seed != two._prepare(
        "micro", "k", config
    ).seed


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
def test_second_run_does_zero_simulation_work(tmp_path, monkeypatch):
    points = _tiny_points()
    first = SweepExecutor("memo", jobs=1, cache_dir=tmp_path)
    warm = first.map_micro(points)
    assert first.stats.computed == len(points)

    def exploding_run_point(runner, config):
        raise AssertionError("cache miss: a point was re-simulated")

    monkeypatch.setattr(parallel, "_run_point", exploding_run_point)
    second = SweepExecutor("memo", jobs=1, cache_dir=tmp_path)
    again = second.map_micro(points)
    assert again == warm
    assert second.stats.cache_hits == len(points)
    assert second.stats.computed == 0


def test_cache_disabled_recomputes(tmp_path):
    executor = SweepExecutor("nocache", jobs=1, cache_dir=None)
    executor.map_micro({"p": _tiny()})
    executor.map_micro({"p": _tiny()})
    assert executor.stats.computed == 2
    assert list(tmp_path.iterdir()) == []


def test_cache_key_includes_scale(tmp_path):
    config = _tiny()
    SweepExecutor("scaled", scale=1.0, jobs=1, cache_dir=tmp_path).map_micro(
        {"p": config}
    )
    other = SweepExecutor("scaled", scale=0.5, jobs=1, cache_dir=tmp_path)
    other.map_micro({"p": config})
    assert other.stats.cache_hits == 0  # different scale, different entry


def test_corrupt_cache_entry_is_recomputed(tmp_path):
    first = SweepExecutor("corrupt", jobs=1, cache_dir=tmp_path)
    warm = first.map_micro({"p": _tiny()})
    (entry,) = tmp_path.rglob("*.pkl")
    entry.write_bytes(b"not a pickle")
    second = SweepExecutor("corrupt", jobs=1, cache_dir=tmp_path)
    assert second.map_micro({"p": _tiny()}) == warm
    assert second.stats.computed == 1


def test_clear_cache_counts_entries(tmp_path):
    executor = SweepExecutor("clear", jobs=1, cache_dir=tmp_path)
    executor.map_micro(_tiny_points())
    assert clear_cache(tmp_path) == len(_tiny_points())
    assert not tmp_path.exists()
    assert clear_cache(tmp_path) == 0


def test_cached_micro_matches_run_micro(tmp_path, monkeypatch):
    monkeypatch.setenv(parallel.CACHE_DIR_ENV, str(tmp_path))
    config = _tiny()
    assert cached_micro(config, label="match") == run_micro(config)


def test_cached_call_memoises_by_arguments(tmp_path, monkeypatch):
    monkeypatch.setenv(parallel.CACHE_DIR_ENV, str(tmp_path))
    assert cached_call(divmod, 7, 3, label="memo") == (2, 1)
    assert cached_call(divmod, 7, 3, label="memo") == (2, 1)  # from cache
    assert cached_call(divmod, 9, 3, label="memo") == (3, 0)  # new entry
    assert len(list(tmp_path.rglob("*.pkl"))) == 2

    monkeypatch.setenv(parallel.CACHE_ENV, "0")
    assert cached_call(divmod, 8, 3, label="memo") == (2, 2)  # plain call
    assert len(list(tmp_path.rglob("*.pkl"))) == 2


# ----------------------------------------------------------------------
# Fallbacks
# ----------------------------------------------------------------------
def test_unpicklable_points_fall_back_to_serial():
    class LocalMix(RequestMix):  # local class: cannot cross processes
        def sample(self, env, rng):
            return Request(env, kind="page", response_size=100)

        def kinds(self):
            return ["page"]

    executor = SweepExecutor("local", jobs=4, cache_dir=None)
    results = executor.map_micro(
        {c: _tiny(mix=LocalMix(), concurrency=c) for c in (2, 4)}
    )
    assert len(results) == 2
    assert executor.stats.serial_fallbacks == 1
    assert executor.stats.computed == 2


def test_broken_pool_falls_back_to_serial(monkeypatch):
    def broken_pool(self, runner, pending):
        raise OSError("no processes for you")

    monkeypatch.setattr(SweepExecutor, "_compute_parallel", broken_pool)
    executor = SweepExecutor("broken", jobs=4, cache_dir=None)
    results = executor.map_micro(_tiny_points())
    assert len(results) == len(_tiny_points())
    assert executor.stats.serial_fallbacks == 1


# ----------------------------------------------------------------------
# Artifact-level: identical rows for any job count
# ----------------------------------------------------------------------
def test_artifact_rows_identical_serial_vs_parallel(monkeypatch, tmp_path):
    """tab1 regenerated with jobs=1 and jobs=4 yields the same rows.

    Each run gets its own empty cache directory so the parallel run
    actually simulates instead of replaying the serial run's entries.
    """
    monkeypatch.setenv(parallel.CACHE_DIR_ENV, str(tmp_path / "serial"))
    serial = run_experiment("tab1", scale=0.1, jobs=1)
    monkeypatch.setenv(parallel.CACHE_DIR_ENV, str(tmp_path / "fanned"))
    fanned = run_experiment("tab1", scale=0.1, jobs=4)
    assert serial.rows == fanned.rows
    assert [c.passed for c in serial.checks] == [c.passed for c in fanned.checks]
