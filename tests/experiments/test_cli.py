"""CLI plumbing (argument parsing and cheap commands)."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.registry import EXPERIMENTS


def test_list_shows_every_artifact(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for artifact in EXPERIMENTS:
        assert artifact in out


def test_calibration_prints_constants(capsys):
    assert main(["calibration"]) == 0
    out = capsys.readouterr().out
    assert "tcp_send_buffer_bytes" in out


def test_unknown_artifact_is_an_error(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown artifact" in capsys.readouterr().err


def test_invalid_scale_is_an_error(capsys):
    assert main(["run", "tab4", "--scale", "7"]) == 2


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_run_defaults():
    args = build_parser().parse_args(["run", "fig7"])
    assert args.artifact == "fig7"
    assert args.scale == 1.0


def test_parser_all_markdown_flag():
    args = build_parser().parse_args(["all", "--scale", "0.2", "--markdown", "out.md"])
    assert args.markdown == "out.md"
    assert args.scale == 0.2


def test_parser_metastable_sweep_flags():
    args = build_parser().parse_args(["metastable", "--scale", "0.5", "--jobs", "4"])
    assert args.scale == 0.5
    assert args.jobs == "4"


def test_parser_accepts_jobs():
    assert build_parser().parse_args(["run", "fig7", "--jobs", "4"]).jobs == "4"
    assert build_parser().parse_args(["all", "--jobs", "auto"]).jobs == "auto"
    assert build_parser().parse_args(["run", "fig7"]).jobs is None


def test_invalid_jobs_is_an_error(capsys):
    assert main(["run", "tab4", "--jobs", "many"]) == 2
    assert "jobs" in capsys.readouterr().err


def test_parser_cache_sweep_flags():
    args = build_parser().parse_args(["cache", "--scale", "0.5", "--jobs", "4"])
    assert args.scale == 0.5
    assert args.jobs == "4"


def test_sweep_cache_status_and_clear(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    (tmp_path / "fig7").mkdir(parents=True)
    (tmp_path / "fig7" / "micro-abc.pkl").write_bytes(b"x")
    assert main(["sweep-cache"]) == 0
    assert "cached points:   1" in capsys.readouterr().out
    assert main(["sweep-cache", "--clear"]) == 0
    assert "removed 1" in capsys.readouterr().out
    assert not tmp_path.exists()


def test_sweep_cache_disabled_message(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE", "0")
    assert main(["sweep-cache"]) == 0
    assert "disabled" in capsys.readouterr().out
