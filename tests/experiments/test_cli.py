"""CLI plumbing (argument parsing and cheap commands)."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.registry import EXPERIMENTS


def test_list_shows_every_artifact(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for artifact in EXPERIMENTS:
        assert artifact in out


def test_calibration_prints_constants(capsys):
    assert main(["calibration"]) == 0
    out = capsys.readouterr().out
    assert "tcp_send_buffer_bytes" in out


def test_unknown_artifact_is_an_error(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown artifact" in capsys.readouterr().err


def test_invalid_scale_is_an_error(capsys):
    assert main(["run", "tab4", "--scale", "7"]) == 2


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_run_defaults():
    args = build_parser().parse_args(["run", "fig7"])
    assert args.artifact == "fig7"
    assert args.scale == 1.0


def test_parser_all_markdown_flag():
    args = build_parser().parse_args(["all", "--scale", "0.2", "--markdown", "out.md"])
    assert args.markdown == "out.md"
    assert args.scale == 0.2
