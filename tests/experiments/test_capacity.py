"""Capacity probes."""

import pytest

from repro.experiments.capacity import (
    CapacityEstimate,
    closed_loop_capacity,
    open_loop_capacity,
)


def test_closed_loop_probe_finds_plateau():
    estimate = closed_loop_capacity("SingleT-Async", 102, max_concurrency=64,
                                    scale=0.15)
    assert estimate.knee_throughput > 0
    assert estimate.knee_load >= 1
    # The curve covers a doubling ladder starting at 1.
    loads = [load for load, _ in estimate.curve]
    assert loads[0] == 1
    assert all(b == 2 * a for a, b in zip(loads, loads[1:]))


def test_closed_loop_probe_validation():
    with pytest.raises(ValueError):
        closed_loop_capacity("SingleT-Async", 102, max_concurrency=0)


def test_closed_loop_capacity_ordering_small_vs_large():
    small = closed_loop_capacity("SingleT-Async", 102, max_concurrency=32,
                                 scale=0.15)
    large = closed_loop_capacity("SingleT-Async", 100 * 1024,
                                 max_concurrency=32, scale=0.15)
    # Small responses sustain orders of magnitude more req/s.
    assert small.peak_throughput > 20 * large.peak_throughput


def test_open_loop_probe_brackets_capacity():
    estimate = open_loop_capacity("SingleT-Async", 102, rate_hint=30000.0,
                                  connections=64, iterations=5, scale=0.2)
    # Sustainable rate should be within sane bounds of the closed-loop
    # capacity (~30k req/s at 0.1KB on the default calibration).
    assert 10_000 < estimate.knee_load < 60_000
    assert estimate.knee_throughput > 0.9 * estimate.knee_load * 0.95


def test_open_loop_probe_validation():
    with pytest.raises(ValueError):
        open_loop_capacity("SingleT-Async", 102, rate_hint=0)


def test_capacity_estimate_peak():
    estimate = CapacityEstimate("x", 1, knee_load=2, knee_throughput=5,
                                curve=((1, 3), (2, 5), (4, 4)))
    assert estimate.peak_throughput == 5
