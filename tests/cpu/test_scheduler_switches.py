"""Context-switch accounting: stickiness, alternation, preemption."""

import pytest

from repro.calibration import default_calibration
from repro.cpu.scheduler import CPU
from repro.sim.core import Environment


def test_back_to_back_bursts_same_thread_no_extra_switch(env, cpu):
    thread = cpu.thread()

    def worker(env, thread):
        for _ in range(10):
            yield thread.run(1e-4)

    env.process(worker(env, thread))
    env.run()
    # Only the initial switch onto the idle core.
    assert cpu.counters.context_switches == 1


def test_alternating_threads_switch_every_burst(env, cpu):
    t1, t2 = cpu.thread(), cpu.thread()
    done = []

    def ping(env, me, other_events, my_events, n):
        for i in range(n):
            yield my_events[i]
            yield me.run(1e-4)
            other_events[i].succeed()
        done.append(me.name)

    # Build strict alternation via handshake events.
    n = 5
    a_events = [env.event() for _ in range(n)]
    b_events = [env.event() for _ in range(n)]
    a_events[0].succeed()

    def worker_a(env):
        for i in range(n):
            yield a_events[i]
            yield t1.run(1e-4)
            b_events[i].succeed()

    def worker_b(env):
        for i in range(n):
            yield b_events[i]
            yield t2.run(1e-4)
            if i + 1 < n:
                a_events[i + 1].succeed()

    env.process(worker_a(env))
    env.process(worker_b(env))
    env.run()
    # Strict alternation: every burst changes threads (including the
    # initial dispatch onto the idle core).
    assert cpu.counters.context_switches == 2 * n


def test_switch_cost_grows_with_runnable_threads(calib):
    assert calib.context_switch_cost(1000) > calib.context_switch_cost(2)


def test_voluntary_vs_involuntary_classification():
    env = Environment()
    calib = default_calibration(time_slice=1e-4)
    cpu = CPU(env, calib)
    t1, t2 = cpu.thread(), cpu.thread()

    def long_worker(env, thread):
        yield thread.run(10e-4)  # 10 slices

    env.process(long_worker(env, t1))
    env.process(long_worker(env, t2))
    env.run()
    # The two long bursts round-robin: most switches are involuntary
    # (slice expiry).
    assert cpu.counters.involuntary_switches > cpu.counters.voluntary_switches


def test_preempted_burst_completes_with_correct_total():
    env = Environment()
    calib = default_calibration(time_slice=1e-4)
    cpu = CPU(env, calib)
    t1, t2 = cpu.thread(), cpu.thread()

    def worker(env, thread, duration):
        yield thread.run(duration)
        return env.now

    p1 = env.process(worker(env, t1, 5e-4))
    p2 = env.process(worker(env, t2, 5e-4))
    env.run()
    assert cpu.counters.busy_user == pytest.approx(10e-4)
    assert p1.value is not None and p2.value is not None


def test_solo_long_burst_never_preempted():
    env = Environment()
    calib = default_calibration(time_slice=1e-4)
    cpu = CPU(env, calib)
    thread = cpu.thread()

    def worker(env, thread):
        yield thread.run(50e-4)

    env.process(worker(env, thread))
    env.run()
    assert cpu.counters.involuntary_switches == 0
    assert cpu.counters.context_switches == 1


def test_dead_thread_does_not_suppress_switch_count(env, cpu):
    t1 = cpu.thread()

    def first(env):
        yield t1.run(1e-4)

    env.process(first(env))
    env.run()
    t1.close()
    t2 = cpu.thread()

    def second(env):
        yield t2.run(1e-4)

    env.process(second(env))
    env.run()
    assert cpu.counters.context_switches == 2


def test_switch_time_accumulates_in_system_time(env, cpu):
    t1, t2 = cpu.thread(), cpu.thread()

    def worker(env, thread):
        yield thread.run(1e-4)

    env.process(worker(env, t1))
    env.process(worker(env, t2))
    env.run()
    assert cpu.counters.switch_time > 0
    assert cpu.counters.busy_system >= cpu.counters.switch_time


def test_runnable_count_reflects_queue(env, cpu):
    threads = [cpu.thread() for _ in range(5)]
    for thread in threads:
        thread.run(1e-3)
    # Nothing has run yet (no env.run): one queued burst per thread.
    assert cpu.runnable_count == 5
