"""CPU accounting dataclasses."""

import pytest

from repro.cpu.accounting import CPUCounters, CPUSnapshot


def make_snapshot(time, **kwargs):
    counters = CPUCounters(**kwargs)
    return CPUSnapshot(time=time, counters=counters)


def test_usage_since_rates():
    a = make_snapshot(0.0)
    b = make_snapshot(
        2.0,
        busy_user=1.0,
        busy_system=0.5,
        context_switches=100,
        voluntary_switches=60,
        involuntary_switches=40,
        syscalls=200,
    )
    usage = b.usage_since(a, cores=1)
    assert usage.elapsed == 2.0
    assert usage.user_time == 1.0
    assert usage.system_time == 0.5
    assert usage.utilization == pytest.approx(0.75)
    assert usage.context_switch_rate == pytest.approx(50.0)
    assert usage.voluntary_switch_rate == pytest.approx(30.0)
    assert usage.involuntary_switch_rate == pytest.approx(20.0)
    assert usage.syscall_rate == pytest.approx(100.0)


def test_user_system_percent_split_of_busy_time():
    a = make_snapshot(0.0)
    b = make_snapshot(1.0, busy_user=0.6, busy_system=0.2)
    usage = b.usage_since(a, cores=1)
    assert usage.user_percent == pytest.approx(75.0)
    assert usage.system_percent == pytest.approx(25.0)
    assert usage.busy_time == pytest.approx(0.8)


def test_idle_cpu_has_zero_percents():
    usage = make_snapshot(1.0).usage_since(make_snapshot(0.0), cores=1)
    assert usage.user_percent == 0.0
    assert usage.system_percent == 0.0
    assert usage.utilization == 0.0


def test_utilization_clamped_to_one():
    a = make_snapshot(0.0)
    b = make_snapshot(1.0, busy_user=1.5)
    assert b.usage_since(a, cores=1).utilization == 1.0


def test_multicore_capacity_divides_utilization():
    a = make_snapshot(0.0)
    b = make_snapshot(1.0, busy_user=1.0)
    assert b.usage_since(a, cores=4).utilization == pytest.approx(0.25)


def test_zero_window_rejected():
    a = make_snapshot(1.0)
    b = make_snapshot(1.0)
    with pytest.raises(ValueError):
        b.usage_since(a, cores=1)


def test_counters_copy_is_independent():
    counters = CPUCounters(busy_user=1.0)
    copy = counters.copy()
    counters.busy_user = 9.0
    assert copy.busy_user == 1.0
