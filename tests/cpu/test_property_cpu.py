"""Property-based tests of the CPU scheduler (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import default_calibration
from repro.cpu.scheduler import CPU
from repro.sim.core import Environment

burst_lists = st.lists(
    st.tuples(
        st.floats(min_value=1e-6, max_value=3e-3),  # user
        st.floats(min_value=0.0, max_value=1e-3),  # system
    ),
    min_size=1,
    max_size=12,
)


@given(workloads=st.lists(burst_lists, min_size=1, max_size=5))
@settings(max_examples=40, deadline=None)
def test_accounting_identity_busy_equals_submitted_plus_switches(workloads):
    """user time == sum of submitted user work (x footprint);
    system time == submitted system work + switch time."""
    env = Environment()
    calib = default_calibration()
    cpu = CPU(env, calib)
    threads = [cpu.thread() for _ in workloads]
    factor = calib.thread_footprint_factor(len(threads))

    def worker(env, thread, bursts):
        for user, system in bursts:
            yield thread.run_split(user, system)

    for thread, bursts in zip(threads, workloads):
        env.process(worker(env, thread, bursts))
    env.run()

    submitted_user = sum(u for bursts in workloads for u, _ in bursts)
    submitted_system = sum(s for bursts in workloads for _, s in bursts)
    assert cpu.counters.busy_user == pytest.approx(submitted_user * factor, rel=1e-9)
    assert cpu.counters.busy_system == pytest.approx(
        submitted_system + cpu.counters.switch_time, rel=1e-9
    )


@given(workloads=st.lists(burst_lists, min_size=1, max_size=5))
@settings(max_examples=40, deadline=None)
def test_elapsed_time_bounds(workloads):
    """Single core: elapsed >= total work; elapsed == busy when saturated
    from t=0 to the end (work-conserving, no idling while work queued)."""
    env = Environment()
    calib = default_calibration()
    cpu = CPU(env, calib)
    threads = [cpu.thread() for _ in workloads]

    def worker(env, thread, bursts):
        for user, system in bursts:
            yield thread.run_split(user, system)

    for thread, bursts in zip(threads, workloads):
        env.process(worker(env, thread, bursts))
    env.run()
    total_busy = cpu.counters.busy_user + cpu.counters.busy_system
    assert env.now == pytest.approx(total_busy, rel=1e-9)


@given(
    n_threads=st.integers(min_value=1, max_value=8),
    n_bursts=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=40, deadline=None)
def test_switch_count_bounded_by_burst_count(n_threads, n_bursts):
    env = Environment()
    calib = default_calibration()
    cpu = CPU(env, calib)

    def worker(env, thread):
        for _ in range(n_bursts):
            yield thread.run(1e-4)

    for _ in range(n_threads):
        env.process(worker(env, cpu.thread()))
    env.run()
    assert cpu.counters.bursts == n_threads * n_bursts
    # A switch can happen at most once per burst dispatch (no preemption
    # here: bursts are shorter than the time slice).
    assert cpu.counters.context_switches <= cpu.counters.bursts
    assert cpu.counters.context_switches >= 1


@given(seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=25, deadline=None)
def test_scheduler_is_deterministic(seed):
    import random

    def run_once():
        env = Environment()
        cpu = CPU(env, default_calibration())
        rng = random.Random(seed)
        log = []

        def worker(env, thread, name):
            for _ in range(4):
                yield thread.run(rng.uniform(1e-5, 1e-3))
                log.append((round(env.now, 12), name))

        for i in range(3):
            env.process(worker(env, cpu.thread(), i))
        env.run()
        return (log, cpu.counters.context_switches)

    assert run_once() == run_once()
