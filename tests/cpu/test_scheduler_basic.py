"""Basic CPU scheduler behaviour: bursts, accounting, thread lifecycle."""

import pytest

from repro.calibration import default_calibration
from repro.cpu.scheduler import CPU
from repro.errors import SimulationError
from repro.sim.core import Environment


def run_burst(env, thread, duration, kind="user"):
    def worker(env, thread):
        yield thread.run(duration, kind)

    process = env.process(worker(env, thread))
    env.run()
    return process


def test_single_burst_takes_its_duration_plus_switch(env, cpu, calib):
    thread = cpu.thread()
    run_burst(env, thread, 1e-3)
    # One context switch onto the idle core, then the burst.
    expected = 1e-3 + calib.context_switch_cost(1)
    assert env.now == pytest.approx(expected)


def test_burst_charges_user_time(env, cpu):
    thread = cpu.thread()
    run_burst(env, thread, 2e-3, "user")
    assert cpu.counters.busy_user == pytest.approx(2e-3)


def test_burst_charges_system_time(env, cpu, calib):
    thread = cpu.thread()
    run_burst(env, thread, 2e-3, "system")
    # busy_system includes the switch cost.
    assert cpu.counters.busy_system == pytest.approx(2e-3 + calib.context_switch_cost(1))
    assert cpu.counters.busy_user == 0.0


def test_run_split_charges_both_kinds(env, cpu):
    thread = cpu.thread()

    def worker(env, thread):
        yield thread.run_split(1e-3, 0.5e-3)

    env.process(worker(env, thread))
    env.run()
    assert cpu.counters.busy_user == pytest.approx(1e-3)
    assert cpu.counters.busy_system >= 0.5e-3


def test_zero_burst_completes_without_core(env, cpu):
    thread = cpu.thread()
    event = thread.run(0.0)
    assert event.triggered
    assert cpu.counters.context_switches == 0


def test_unknown_kind_rejected(env, cpu):
    thread = cpu.thread()
    with pytest.raises(ValueError):
        thread.run(1e-3, "wizard")


def test_negative_duration_rejected(env, cpu):
    thread = cpu.thread()
    with pytest.raises(ValueError):
        thread.run_split(-1.0, 0.0)


def test_double_outstanding_burst_rejected(env, cpu):
    thread = cpu.thread()
    thread.run(1e-3)
    with pytest.raises(SimulationError):
        thread.run(1e-3)


def test_closed_thread_rejects_bursts(env, cpu):
    thread = cpu.thread()
    thread.close()
    with pytest.raises(SimulationError):
        thread.run(1e-3)


def test_close_updates_live_thread_count(env, cpu):
    t1 = cpu.thread()
    t2 = cpu.thread()
    assert cpu.live_threads == 2
    t1.close()
    assert cpu.live_threads == 1
    t1.close()  # idempotent
    assert cpu.live_threads == 1
    del t2


def test_syscall_counts_and_charges(env, cpu, calib):
    thread = cpu.thread()

    def worker(env, thread):
        yield thread.syscall(bytes_copied=1000)

    env.process(worker(env, thread))
    env.run()
    assert cpu.counters.syscalls == 1
    assert cpu.counters.busy_user == pytest.approx(calib.syscall_user_cost)
    assert cpu.counters.busy_system >= calib.syscall_kernel_cost + 1000 * calib.copy_cost_per_byte


def test_multicore_runs_in_parallel():
    env = Environment()
    calib = default_calibration(cores=4)
    cpu = CPU(env, calib)

    def worker(env, thread):
        yield thread.run(1e-3)

    for _ in range(4):
        env.process(worker(env, cpu.thread()))
    env.run()
    # Four 1ms bursts on four cores finish in ~1ms, not 4ms.
    assert env.now < 2e-3


def test_footprint_factor_inflates_user_work(env, calib):
    env2 = Environment()
    cpu = CPU(env2, calib)
    # Register enough threads to exceed the footprint-free limit.
    threads = [cpu.thread() for _ in range(200)]

    def worker(env, thread):
        yield thread.run(1e-3)

    env2.process(worker(env2, threads[0]))
    env2.run()
    assert cpu.counters.busy_user > 1e-3 * 1.05


def test_snapshot_usage_since(env, cpu):
    thread = cpu.thread()
    start = cpu.snapshot()

    def worker(env, thread):
        yield thread.run(3e-3)
        yield env.timeout(7e-3)

    env.process(worker(env, thread))
    env.run()
    usage = cpu.snapshot().usage_since(start, cpu.cores)
    assert usage.user_time == pytest.approx(3e-3)
    assert 0.0 < usage.utilization < 1.0
