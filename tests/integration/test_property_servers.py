"""Property-based end-to-end test: every architecture completes every
request stream, byte-exactly, regardless of size mix."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import default_calibration
from repro.core.hybrid import HybridServer
from repro.cpu.scheduler import CPU
from repro.net.link import Link
from repro.net.messages import Request
from repro.net.tcp import Connection
from repro.servers.netty import NettyServer
from repro.servers.singlet import SingleThreadedServer
from repro.servers.threaded import ThreadedServer
from repro.sim.core import Environment

SERVER_CLASSES = [ThreadedServer, SingleThreadedServer, NettyServer, HybridServer]

size_lists = st.lists(
    st.one_of(
        st.integers(min_value=0, max_value=2048),
        st.integers(min_value=15_000, max_value=150_000),
    ),
    min_size=1,
    max_size=8,
)


@given(
    sizes=size_lists,
    server_index=st.integers(min_value=0, max_value=len(SERVER_CLASSES) - 1),
    n_connections=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=40, deadline=None)
def test_all_requests_complete_with_exact_byte_counts(sizes, server_index, n_connections):
    calib = default_calibration()
    env = Environment()
    cpu = CPU(env, calib)
    server = SERVER_CLASSES[server_index](env, cpu)
    link = Link.lan(calib)
    connections = []
    for _ in range(n_connections):
        connection = Connection(env, link, calib)
        server.attach(connection)
        connections.append(connection)

    requests = []
    for index, size in enumerate(sizes):
        connection = connections[index % n_connections]
        request = Request(env, f"kind-{size}", size)
        connection.send_request(request)
        requests.append(request)
    env.run(env.all_of([r.completed for r in requests]))
    # Let same-timestamp server bookkeeping (stats, re-registration) settle.
    env.run(until=env.now + 0.01)

    assert all(r.completed_at is not None for r in requests)
    assert server.stats.requests_completed == len(sizes)
    total_bytes = sum(sizes)
    delivered = sum(c.stats.bytes_delivered for c in connections)
    assert delivered == total_bytes
    # CPU accounting sanity: busy time fits inside elapsed wall time.
    busy = cpu.counters.busy_user + cpu.counters.busy_system
    assert busy <= env.now * cpu.cores + 1e-9
