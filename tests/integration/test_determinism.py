"""Full-stack determinism: identical seeds give bit-identical results.

Reproducibility is a core requirement for a reproduction package — every
number in EXPERIMENTS.md must come out the same on every run.
"""

import pytest

from repro.experiments.micro import MicroConfig, run_micro
from repro.ntier.topology import NTierConfig, run_ntier
from repro.workload.mixes import BimodalMix


@pytest.mark.parametrize("server", ["sTomcat-Sync", "sTomcat-Async",
                                    "SingleT-Async", "NettyServer",
                                    "HybridNetty", "TomcatAsync"])
def test_micro_runs_replay_identically(server):
    def run_once():
        result = run_micro(
            MicroConfig(server=server, concurrency=6, response_size=5000,
                        duration=0.5, warmup=0.1, seed=11)
        )
        return (
            result.throughput,
            result.report.response_time_mean,
            result.report.context_switch_rate,
            result.report.write_calls_per_request,
        )

    assert run_once() == run_once()


def test_micro_seed_changes_the_stochastic_mix_only():
    def run_with_seed(seed):
        result = run_micro(
            MicroConfig(server="HybridNetty", concurrency=8,
                        mix=BimodalMix(0.3), duration=0.6, warmup=0.1,
                        seed=seed)
        )
        return result.report.per_kind_throughput

    a = run_with_seed(1)
    b = run_with_seed(2)
    # Different seeds draw different bimodal splits, but both serve both
    # kinds and both runs are internally deterministic.
    assert set(a) == set(b) == {"light", "heavy"}
    assert run_with_seed(1) == a


def test_ntier_runs_replay_identically():
    config = NTierConfig(tomcat_variant="async", users=40, think_mean=0.05,
                         duration=1.2, warmup=0.4)

    def run_once():
        result = run_ntier(config)
        return (
            result.throughput,
            result.response_time,
            tuple(sorted(result.tier_utilization.items())),
            tuple(sorted(result.tier_switch_rate.items())),
        )

    assert run_once() == run_once()
