"""Executable versions of the paper's mechanism diagrams via the tracer.

Figure 3 (reactor flow), Figure 5 (write-spin rounds) and Figure 10
(hybrid dispatch) as ordered milestone sequences.
"""

import pytest

from repro.core.hybrid import HybridServer
from repro.metrics.tracing import RequestTracer
from repro.net.messages import Request
from repro.servers.reactor import ReactorServer
from repro.servers.singlet import SingleThreadedServer


def traced_serve(env, cpu, make_connection, server_cls, size, **kwargs):
    server = server_cls(env, cpu, **kwargs)
    tracer = RequestTracer(env)
    server.tracer = tracer
    conn = make_connection()
    server.attach(conn)
    request = Request(env, "x", size)
    tracer.watch(request)
    conn.send_request(request)
    env.run(request.completed)
    env.run(until=env.now + 0.005)  # let bookkeeping settle
    return server, tracer.trace(request)


def test_fig3_reactor_flow_order(env, cpu, make_connection):
    """created -> read -> computed -> write -> response-written -> completed."""
    _, trace = traced_serve(env, cpu, make_connection, ReactorServer, 100,
                            workers=2)
    assert trace.is_ordered("created", "read", "computed", "write",
                            "response-written")
    assert trace.at("read") < trace.at("computed") < trace.at("write")


def test_fig3_read_and_write_handled_by_different_workers(env, cpu, make_connection):
    """The 4-switch flow's defining property: the thread that computes is
    generally not the thread that writes."""
    server, trace = traced_serve(env, cpu, make_connection, ReactorServer,
                                 100, workers=4)
    compute_thread = next(e.detail for e in trace.events if e.name == "computed")
    read_thread = next(e.detail for e in trace.events if e.name == "read")
    # Both milestones carry worker-thread names from the pool.
    assert compute_thread.startswith(server.name)
    assert read_thread.startswith(server.name)


def test_fig5_write_spin_rounds_are_ack_paced(env, cpu, make_connection, calib):
    """Each write round of a large response waits for ACKs: consecutive
    write milestones are separated by at least the one-way latency."""
    _, trace = traced_serve(env, cpu, make_connection, SingleThreadedServer,
                            100 * 1024)
    writes = [e.time for e in trace.events if e.name == "write"]
    assert len(writes) > 30
    # The whole spin spans at least one round trip (the first ACK must
    # come back before the second successful write).
    assert writes[-1] - writes[0] >= calib.rtt
    # In steady state ACKs arrive one segment-serialization apart, so most
    # positive gaps sit near that pace (not arbitrarily tight loops).
    segment_time = calib.mss / calib.link_bandwidth
    spaced = [b - a for a, b in zip(writes, writes[1:]) if b - a > 0]
    paced = [gap for gap in spaced if gap >= 0.4 * segment_time]
    assert len(paced) >= len(spaced) // 2


def test_fig10_hybrid_single_write_on_light_path(env, cpu, make_connection):
    server = HybridServer(env, cpu)
    tracer = RequestTracer(env)
    server.tracer = tracer
    conn = make_connection()
    server.attach(conn)
    # Warm-up request classifies the type.
    warm = Request(env, "page", 100)
    conn.send_request(warm)
    env.run(warm.completed)
    light = Request(env, "page", 100)
    tracer.watch(light)
    conn.send_request(light)
    env.run(light.completed)
    env.run(until=env.now + 0.005)
    trace = tracer.trace(light)
    # The light path: read, computed, then exactly the completion marks
    # (its single write is not the spin helper, so no "write" milestones).
    assert trace.is_ordered("created", "read", "computed", "completed")
    assert light.metadata["path"] == "light"
    assert light.write_calls == 1
