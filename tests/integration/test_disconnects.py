"""Failure injection: clients disconnecting at awkward moments.

A production server must survive peers vanishing mid-request and
mid-response without leaking worker threads, parked write contexts or
selector registrations — and keep serving everyone else.
"""

import pytest

from repro.core.hybrid import HybridServer
from repro.net.messages import Request
from repro.servers.netty import NettyServer
from repro.servers.reactor import ReactorFixServer, ReactorServer
from repro.servers.singlet import SingleThreadedServer
from repro.servers.threaded import ThreadedServer
from repro.servers.tomcat import TomcatAsyncServer

ALL = [ThreadedServer, ReactorServer, ReactorFixServer, SingleThreadedServer,
       NettyServer, HybridServer, TomcatAsyncServer]

LARGE = 100 * 1024


def survivors_still_served(env, cpu, make_connection, server_cls):
    server = server_cls(env, cpu)
    victim = make_connection()
    survivor = make_connection()
    server.attach(victim)
    server.attach(survivor)
    return server, victim, survivor


@pytest.mark.parametrize("server_cls", ALL)
def test_disconnect_while_idle_is_harmless(env, cpu, make_connection, server_cls):
    server, victim, survivor = survivors_still_served(env, cpu, make_connection,
                                                      server_cls)
    env.run(until=0.002)
    victim.close()
    request = Request(env, "x", 1000)
    survivor.send_request(request)
    env.run(request.completed)
    assert request.completed_at is not None


@pytest.mark.parametrize("server_cls", ALL)
def test_disconnect_during_large_response(env, cpu, make_connection, server_cls):
    """Close the connection while its 100KB response is mid-drain; the
    server must recover and keep serving the other connection."""
    server, victim, survivor = survivors_still_served(env, cpu, make_connection,
                                                      server_cls)
    doomed = Request(env, "big", LARGE)
    victim.send_request(doomed)
    env.run(until=0.002)  # response is mid-write now
    victim.close()
    env.run(until=env.now + 0.01)
    for _ in range(3):
        request = Request(env, "x", 2000)
        survivor.send_request(request)
        env.run(request.completed)
        assert request.completed_at is not None
    assert doomed.completed_at is None


@pytest.mark.parametrize("server_cls", [NettyServer, HybridServer])
def test_disconnect_cleans_parked_write_context(env, cpu, make_connection, server_cls):
    server = server_cls(env, cpu)
    conn = make_connection()
    server.attach(conn)
    request = Request(env, "big", LARGE)
    conn.send_request(request)
    env.run(until=0.002)
    conn.close()
    env.run(until=env.now + 0.02)
    assert all(conn not in worker.pending for worker in server._workers)


def test_threaded_server_retires_worker_thread(env, cpu, make_connection):
    server = ThreadedServer(env, cpu)
    conn = make_connection()
    server.attach(conn)
    env.run(until=0.001)
    threads_with_conn = cpu.live_threads
    conn.close()
    env.run(until=env.now + 0.01)
    assert cpu.live_threads == threads_with_conn - 1


def test_selector_forgets_closed_connections(env, cpu, make_connection):
    server = SingleThreadedServer(env, cpu)
    conns = [make_connection() for _ in range(3)]
    for conn in conns:
        server.attach(conn)
    env.run(until=0.001)
    conns[0].close()
    # Poke readiness computation via a request on another connection.
    request = Request(env, "x", 100)
    conns[1].send_request(request)
    env.run(request.completed)
    assert server.selector.registered == 2
