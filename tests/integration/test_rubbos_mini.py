"""Miniature Figure 1: the Tomcat-upgrade regression in a 3-tier system.

A scaled-down RUBBoS (hundreds of users, 50ms think time) keeps the run
under a few wall-clock seconds while preserving the effect: the async
Tomcat saturates earlier and switches more.
"""

import pytest

from repro.experiments.parallel import cached_ntier
from repro.ntier.topology import NTierConfig


def mini(variant, users):
    return cached_ntier(
        NTierConfig(
            tomcat_variant=variant,
            users=users,
            think_mean=0.05,
            duration=2.5,
            warmup=1.0,
        ),
        label="rubbos-mini",
    )


@pytest.fixture(scope="module")
def saturated_runs():
    return {variant: mini(variant, 220) for variant in ["sync", "async"]}


def test_both_variants_serve_the_workload(saturated_runs):
    for result in saturated_runs.values():
        assert result.report.completed > 100


def test_tomcat_is_the_bottleneck(saturated_runs):
    for result in saturated_runs.values():
        assert result.bottleneck_tier == "tomcat"


def test_sync_outperforms_async_at_saturation(saturated_runs):
    assert (saturated_runs["sync"].throughput
            > 1.02 * saturated_runs["async"].throughput)


def test_async_response_time_worse_at_saturation(saturated_runs):
    assert (saturated_runs["async"].response_time
            > saturated_runs["sync"].response_time)


def test_async_tomcat_switches_more(saturated_runs):
    assert (saturated_runs["async"].tier_switch_rate["tomcat"]
            > saturated_runs["sync"].tier_switch_rate["tomcat"])


def test_non_bottleneck_tiers_not_saturated(saturated_runs):
    for result in saturated_runs.values():
        assert result.tier_utilization["apache"] < 0.8
        assert result.tier_utilization["mysql"] < 0.8


def test_light_load_variants_equivalent():
    """Below saturation the upgrade is harmless — the paper's surprise is
    specifically at high utilisation."""
    sync = mini("sync", 30)
    async_ = mini("async", 30)
    assert async_.throughput == pytest.approx(sync.throughput, rel=0.1)
