"""Miniature versions of the paper's headline claims.

These run small-but-real experiments (seconds of virtual time, a second or
two of wall time each) and assert the qualitative shapes the full
benchmarks regenerate at paper scale.

Runs go through :func:`repro.experiments.parallel.cached_micro`, so on a
warm ``.repro-cache/`` this module re-verifies in well under a second;
any edit to the ``repro`` sources invalidates the cache and re-simulates.
"""

import pytest

from repro.experiments.micro import MicroConfig
from repro.experiments.parallel import cached_micro
from repro.workload.mixes import SIZE_LARGE, SIZE_SMALL, BimodalMix


def run(server, **kwargs):
    defaults = dict(server=server, concurrency=8, response_size=SIZE_SMALL,
                    duration=1.0, warmup=0.3)
    defaults.update(kwargs)
    return cached_micro(MicroConfig(**defaults), label="paper-shapes")


# ----------------------------------------------------------------------
# Section III: context switches and the event processing flow
# ----------------------------------------------------------------------
def test_async_tomcat_slower_than_sync_at_low_concurrency():
    sync = run("TomcatSync")
    async_ = run("TomcatAsync")
    assert async_.throughput < sync.throughput


def test_async_tomcat_switches_more_than_sync():
    sync = run("TomcatSync")
    async_ = run("TomcatAsync")
    assert async_.report.context_switch_rate > 1.5 * sync.report.context_switch_rate


def test_fix_beats_plain_reactor():
    plain = run("sTomcat-Async")
    fix = run("sTomcat-Async-Fix")
    assert fix.throughput > plain.throughput
    assert fix.report.context_switch_rate < plain.report.context_switch_rate


def test_single_threaded_fastest_for_small_responses():
    results = {
        server: run(server).throughput
        for server in ["sTomcat-Sync", "sTomcat-Async", "sTomcat-Async-Fix",
                       "SingleT-Async"]
    }
    assert results["SingleT-Async"] == max(results.values())


# ----------------------------------------------------------------------
# Section IV: the write-spin problem
# ----------------------------------------------------------------------
def test_write_spin_only_for_large_responses():
    small = run("SingleT-Async", concurrency=16)
    large = run("SingleT-Async", concurrency=16, response_size=SIZE_LARGE,
                duration=2.0, warmup=0.5)
    assert small.report.write_calls_per_request == pytest.approx(1.0)
    assert large.report.write_calls_per_request > 30


def test_single_threaded_loses_large_responses_to_threads():
    sync = run("sTomcat-Sync", response_size=SIZE_LARGE, duration=2.0, warmup=0.5)
    single = run("SingleT-Async", response_size=SIZE_LARGE, duration=2.0, warmup=0.5)
    assert single.throughput < 0.93 * sync.throughput


def test_latency_collapses_single_threaded_but_not_threads():
    # Concurrency 100 as in the paper's Figure 7: enough pipeline depth
    # that the thread-based server fully masks the wait-ACK rounds.
    base = run("SingleT-Async", concurrency=100, response_size=SIZE_LARGE,
               duration=2.5, warmup=0.8)
    lagged = run("SingleT-Async", concurrency=100, response_size=SIZE_LARGE,
                 duration=2.5, warmup=0.8, added_latency=5e-3)
    assert lagged.throughput < 0.35 * base.throughput

    sync_base = run("sTomcat-Sync", concurrency=100, response_size=SIZE_LARGE,
                    duration=2.5, warmup=0.8)
    sync_lagged = run("sTomcat-Sync", concurrency=100, response_size=SIZE_LARGE,
                      duration=2.5, warmup=0.8, added_latency=5e-3)
    assert sync_lagged.throughput > 0.85 * sync_base.throughput


def test_bigger_send_buffer_fixes_the_spin():
    spinning = run("SingleT-Async", concurrency=16, response_size=SIZE_LARGE,
                   duration=2.0, warmup=0.5)
    roomy = run("SingleT-Async", concurrency=16, response_size=SIZE_LARGE,
                duration=2.0, warmup=0.5, send_buffer_size=SIZE_LARGE)
    assert roomy.report.write_calls_per_request == pytest.approx(1.0)
    assert roomy.throughput > spinning.throughput


# ----------------------------------------------------------------------
# Section V: Netty and the hybrid
# ----------------------------------------------------------------------
def test_netty_dodges_the_latency_collapse():
    base = run("NettyServer", concurrency=100, response_size=SIZE_LARGE,
               duration=2.5, warmup=0.8)
    lagged = run("NettyServer", concurrency=100, response_size=SIZE_LARGE,
                 duration=2.5, warmup=0.8, added_latency=5e-3)
    assert lagged.throughput > 0.85 * base.throughput


def test_netty_overhead_on_small_responses():
    netty = run("NettyServer", concurrency=16)
    single = run("SingleT-Async", concurrency=16)
    assert netty.throughput < 0.95 * single.throughput


def test_hybrid_matches_the_best_of_both_worlds():
    light = {s: run(s, concurrency=16).throughput
             for s in ["SingleT-Async", "NettyServer", "HybridNetty"]}
    assert light["HybridNetty"] > 0.95 * light["SingleT-Async"]
    assert light["HybridNetty"] > light["NettyServer"]

    mixed = {
        s: run(s, concurrency=32, mix=BimodalMix(0.10), duration=2.5,
               warmup=0.8).throughput
        for s in ["SingleT-Async", "NettyServer", "HybridNetty"]
    }
    assert mixed["HybridNetty"] >= 0.97 * max(mixed.values())
    assert mixed["HybridNetty"] > 1.05 * mixed["SingleT-Async"]


def test_hybrid_uses_both_paths_on_mixed_workload():
    result = run("HybridNetty", concurrency=32, mix=BimodalMix(0.10),
                 duration=2.0, warmup=0.5)
    assert result.server_stats["light_path_requests"] > 0
    assert result.server_stats["heavy_path_requests"] > 0
    # Light requests dominate a 10%-heavy mix.
    assert (result.server_stats["light_path_requests"]
            > result.server_stats["heavy_path_requests"])
