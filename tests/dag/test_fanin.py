"""Property-style fan-in bookkeeping: every policy x outcome combination.

The fan-in decision is a pure function over settled branch statuses
(:func:`~repro.dag.runtime.fanin_outcome` /
:func:`~repro.dag.runtime.settle_branches`), so the whole outcome space
is enumerable: for every policy, every fan-out up to 4 and every
combination of branch outcomes (ok / failed-busy / failed-timeout /
failed-rejected / dropped) the bookkeeping invariant

    branch_ok + branch_failed + branch_dropped == fan_out

must hold, degraded must imply success, and a degraded response is
flagged at most once per fan-in evaluation.
"""

import itertools

import pytest

from repro.dag import ServiceNode
from repro.dag.runtime import EdgeRuntime, fanin_outcome, settle_branches
from repro.dag.config import Edge

pytestmark = pytest.mark.dag

#: Every way one async branch can settle.  ``cancelled`` is the policy
#: cutting a straggler loose (dropped); the middle three are failures.
_OUTCOMES = ("ok", "busy", "timeout", "rejected", "cancelled")
_MAX_FAN_OUT = 4


def _combos(n):
    return itertools.product(_OUTCOMES, repeat=n)


def test_settle_branches_partition_is_exact():
    for n in range(1, _MAX_FAN_OUT + 1):
        for statuses in _combos(n):
            ok, failed, dropped = settle_branches(statuses)
            assert ok + failed + dropped == n
            assert ok == statuses.count("ok")
            assert dropped == statuses.count("cancelled")


def test_wait_all_succeeds_only_when_every_branch_is_ok():
    for n in range(1, _MAX_FAN_OUT + 1):
        for statuses in _combos(n):
            success, degraded = fanin_outcome("wait_all", 0, statuses)
            assert success == all(s == "ok" for s in statuses)
            # wait_all can never respond from partial results.
            assert degraded is False


def test_quorum_succeeds_at_threshold_and_flags_partial_results():
    for n in range(1, _MAX_FAN_OUT + 1):
        for quorum in range(1, n + 1):
            for statuses in _combos(n):
                ok = statuses.count("ok")
                success, degraded = fanin_outcome("quorum", quorum, statuses)
                assert success == (ok >= quorum)
                assert degraded == (success and ok < n)


def test_best_effort_always_succeeds_and_flags_anything_missing():
    for n in range(1, _MAX_FAN_OUT + 1):
        for statuses in _combos(n):
            success, degraded = fanin_outcome("best_effort", 0, statuses)
            assert success is True
            assert degraded == (statuses.count("ok") < n)


def test_degraded_implies_success_for_every_policy():
    for n in range(1, _MAX_FAN_OUT + 1):
        for statuses in _combos(n):
            for policy, quorum in (
                ("wait_all", 0),
                ("quorum", max(1, n - 1)),
                ("best_effort", 0),
            ):
                success, degraded = fanin_outcome(policy, quorum, statuses)
                if degraded:
                    assert success


def test_edge_counters_mirror_the_partition():
    """EdgeRuntime.record() implements the same partition as
    settle_branches, so per-edge counters always sum to the calls made."""
    for statuses in _combos(3):
        runtime = EdgeRuntime("a", Edge("b"), ServiceNode(name="b"))
        for status in statuses:
            runtime.record(status)
        ok, failed, dropped = settle_branches(statuses)
        assert runtime.branch_ok == ok
        assert runtime.branch_failed == failed
        assert runtime.branch_dropped == dropped
        counters = runtime.counters()
        assert counters["edge_a-b_ok"] == float(ok)
        assert counters["edge_a-b_failed"] == float(failed)
        assert counters["edge_a-b_dropped"] == float(dropped)
