"""The DAG layer's zero-impact contract, proven three ways.

A run with (a) no DAG config at all, (b) ``DagConfig(enabled=False)``
and (c) a fully enabled config under ``REPRO_DAG=0`` must all be
*bit-identical*: same report floats, same counters, same kernel event
count — the DAG build path never executes, forks no RNG streams,
creates no objects, and the classic linear chain is built exactly as
before the layer existed.
"""

import dataclasses

import pytest

from repro.dag import DAG_ENV, DagConfig, Edge, ServiceNode
from repro.ntier.topology import NTierConfig, run_ntier

pytestmark = pytest.mark.dag

_BASE = dict(
    tomcat_variant="async",
    users=15,
    think_mean=0.5,
    duration=1.0,
    warmup=0.4,
    timeline_bucket=0.25,
    seed=9,
)

#: A config that visibly changes behaviour when the layer is live.
_DAG = DagConfig(
    entry="front",
    nodes=(
        ServiceNode(
            name="front",
            edges=(Edge("left"), Edge("right")),
            fan_in="wait_all",
            service_cpu=100.0e-6,
        ),
        ServiceNode(name="left", service_cpu=200.0e-6, service_jitter=0.5),
        ServiceNode(name="right", service_cpu=200.0e-6),
    ),
)


def _fingerprint(result):
    return (
        dataclasses.asdict(result.report),
        sorted(result.server_stats.items()),
        sorted(result.client_stats.items()),
        sorted(result.resilience.items()),
        result.kernel_events,
    )


@pytest.fixture
def baseline(monkeypatch):
    monkeypatch.setenv(DAG_ENV, "1")
    return _fingerprint(run_ntier(NTierConfig(**_BASE)))


def test_disabled_config_is_bit_identical(monkeypatch, baseline):
    monkeypatch.setenv(DAG_ENV, "1")
    result = run_ntier(
        NTierConfig(dag=dataclasses.replace(_DAG, enabled=False), **_BASE)
    )
    assert _fingerprint(result) == baseline
    assert result.dag_stats == {}


def test_kill_switch_overrides_an_enabled_config(monkeypatch, baseline):
    monkeypatch.setenv(DAG_ENV, "0")
    result = run_ntier(NTierConfig(dag=_DAG, **_BASE))
    assert _fingerprint(result) == baseline
    assert result.dag_stats == {}


def test_enabled_config_actually_changes_the_run(monkeypatch, baseline):
    """Sanity for the contract: the live layer must NOT be a no-op."""
    monkeypatch.setenv(DAG_ENV, "1")
    result = run_ntier(NTierConfig(dag=_DAG, **_BASE))
    assert _fingerprint(result) != baseline
    assert result.dag_stats["dag_requests"] > 0
