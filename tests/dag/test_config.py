"""DagConfig / ServiceNode / Edge validation and the kill switch."""

import pytest

from repro.dag import (
    DAG_ENV,
    DagConfig,
    Edge,
    ServiceNode,
    dag_enabled,
)
from repro.errors import ExperimentError
from repro.replica import ReplicaConfig

pytestmark = pytest.mark.dag


def _linear():
    return DagConfig(
        entry="front",
        nodes=(
            ServiceNode(name="front", edges=(Edge("back"),)),
            ServiceNode(name="back"),
        ),
    )


def test_valid_config_round_trips():
    config = _linear()
    assert config.validate() is config
    assert config.active
    assert config.node("back").name == "back"


def test_config_is_hashable_and_value_comparable():
    assert _linear() == _linear()
    assert hash(_linear()) == hash(_linear())


def test_unknown_node_lookup_raises():
    with pytest.raises(ExperimentError):
        _linear().node("missing")


@pytest.mark.parametrize(
    "nodes, entry",
    [
        # no nodes at all
        ((), "front"),
        # duplicate names
        ((ServiceNode(name="a"), ServiceNode(name="a")), "a"),
        # entry not among the nodes
        ((ServiceNode(name="a"),), "missing"),
        # edge to an unknown node
        ((ServiceNode(name="a", edges=(Edge("ghost"),)),), "a"),
        # edge to itself
        ((ServiceNode(name="a", edges=(Edge("a"),)),), "a"),
        # duplicate edges to the same target
        (
            (
                ServiceNode(name="a", edges=(Edge("b"), Edge("b"))),
                ServiceNode(name="b"),
            ),
            "a",
        ),
        # unknown edge mode
        (
            (
                ServiceNode(name="a", edges=(Edge("b", mode="maybe"),)),
                ServiceNode(name="b"),
            ),
            "a",
        ),
        # empty pool
        (
            (
                ServiceNode(name="a", edges=(Edge("b", pool=0),)),
                ServiceNode(name="b"),
            ),
            "a",
        ),
        # zero request size
        (
            (
                ServiceNode(name="a", edges=(Edge("b", request_size=0),)),
                ServiceNode(name="b"),
            ),
            "a",
        ),
        # unknown fan-in policy
        (
            (
                ServiceNode(name="a", edges=(Edge("b"),), fan_in="most"),
                ServiceNode(name="b"),
            ),
            "a",
        ),
        # quorum outside [1, fan_out]
        (
            (
                ServiceNode(name="a", edges=(Edge("b"),), fan_in="quorum",
                            quorum=2),
                ServiceNode(name="b"),
            ),
            "a",
        ),
        # non-positive best-effort timeout
        (
            (
                ServiceNode(name="a", edges=(Edge("b"),),
                            fan_in="best_effort", best_effort_timeout=0.0),
                ServiceNode(name="b"),
            ),
            "a",
        ),
        # negative own work
        ((ServiceNode(name="a", service_cpu=-1.0e-6),), "a"),
        # negative jitter
        ((ServiceNode(name="a", service_jitter=-0.1),), "a"),
        # response below one byte
        ((ServiceNode(name="a", response_size=0),), "a"),
    ],
)
def test_validate_rejects_malformed_graphs(nodes, entry):
    with pytest.raises(ExperimentError):
        DagConfig(entry=entry, nodes=nodes).validate()


def test_validate_rejects_cycles():
    config = DagConfig(
        entry="a",
        nodes=(
            ServiceNode(name="a", edges=(Edge("b"),)),
            ServiceNode(name="b", edges=(Edge("c"),)),
            ServiceNode(name="c", edges=(Edge("a"),)),
        ),
    )
    with pytest.raises(ExperimentError, match="cycle"):
        config.validate()


def test_replicated_node_must_be_a_leaf(monkeypatch):
    monkeypatch.setenv("REPRO_REPLICA", "1")
    config = DagConfig(
        entry="a",
        nodes=(
            ServiceNode(name="a", edges=(Edge("b"),)),
            ServiceNode(name="b", edges=(Edge("c"),),
                        replica=ReplicaConfig(replicas=2)),
            ServiceNode(name="c"),
        ),
    )
    with pytest.raises(ExperimentError, match="leaf"):
        config.validate()


def test_replicated_node_needs_exactly_one_upstream_edge(monkeypatch):
    monkeypatch.setenv("REPRO_REPLICA", "1")
    config = DagConfig(
        entry="a",
        nodes=(
            ServiceNode(name="a", edges=(Edge("b"), Edge("c"))),
            ServiceNode(name="b", edges=(Edge("c"),)),
            ServiceNode(name="c", replica=ReplicaConfig(replicas=2)),
        ),
    )
    with pytest.raises(ExperimentError, match="upstream"):
        config.validate()


def test_topo_order_is_leaves_first_and_deterministic():
    config = DagConfig(
        entry="front",
        nodes=(
            ServiceNode(name="front", edges=(Edge("mid"), Edge("leaf2"))),
            ServiceNode(name="mid", edges=(Edge("leaf1"),)),
            ServiceNode(name="leaf1"),
            ServiceNode(name="leaf2"),
        ),
    )
    order = config.topo_order()
    assert order == ("leaf1", "leaf2", "mid", "front")
    assert order == config.topo_order()


def test_fan_out_counts_only_async_edges():
    node = ServiceNode(
        name="a",
        edges=(Edge("b"), Edge("c", mode="sync"), Edge("d")),
    )
    assert node.fan_out == 2


def test_disabled_or_empty_config_is_inactive():
    assert not DagConfig(entry="a", nodes=(), enabled=True).active
    assert not _linear().__class__(
        entry="front", nodes=_linear().nodes, enabled=False
    ).active


@pytest.mark.parametrize("value, expected", [
    ("0", False),
    ("off", False),
    ("no", False),
    ("false", False),
    ("FALSE", False),
    ("1", True),
    ("on", True),
    ("", True),
])
def test_kill_switch_values(monkeypatch, value, expected):
    monkeypatch.setenv(DAG_ENV, value)
    assert dag_enabled() is expected


def test_kill_switch_defaults_on(monkeypatch):
    monkeypatch.delenv(DAG_ENV, raising=False)
    assert dag_enabled()
