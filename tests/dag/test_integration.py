"""End-to-end DAG runs: bookkeeping, degradation, composition.

Short seeded n-tier runs through ``run_ntier`` with a DAG topology
attached, asserting the run-level contracts the pure-function tests
cannot see: per-edge branch counters summing to the fan-out actually
issued, degraded responses counted exactly once per request, gray
failures degrading quorum/best-effort runs without failing them, and
the per-edge breakers registering under their ``<source>-<target>``
names.
"""

import pytest

from repro.dag import DAG_ENV, DagConfig, Edge, ServiceNode
from repro.faults import DegradeWindow, FaultPlan
from repro.ntier.topology import NTierConfig, run_ntier
from repro.resilience import BreakerConfig, ResiliencePolicy
from repro.workload.mixes import FixedMix

pytestmark = pytest.mark.dag


def _three_leaf(policy, **node_overrides):
    return DagConfig(
        entry="compose",
        nodes=(
            ServiceNode(
                name="compose",
                edges=(Edge("text"), Edge("media"), Edge("graph")),
                fan_in=policy,
                service_cpu=100.0e-6,
                **node_overrides,
            ),
            ServiceNode(name="text", service_cpu=200.0e-6),
            ServiceNode(name="media", service_cpu=200.0e-6),
            ServiceNode(name="graph", service_cpu=200.0e-6),
        ),
    )


def _run(dag, *, fault_plan=None, resilience=None, users=20, duration=1.5,
         seed=7):
    return run_ntier(NTierConfig(
        tomcat_variant="async",
        users=users,
        think_mean=0.05,
        duration=duration,
        warmup=0.3,
        mix=FixedMix(2048),
        dag=dag,
        fault_plan=fault_plan or FaultPlan(),
        resilience=resilience,
        seed=seed,
    ))


#: One gray leaf: the text branch loses 98% of its CPU mid-run.
_GRAY = FaultPlan(degrade_windows=(
    DegradeWindow(start=0.5, end=1.2, instance=1, share=0.98),
))


@pytest.fixture(autouse=True)
def _dag_on(monkeypatch):
    monkeypatch.setenv(DAG_ENV, "1")


def _edge_totals(stats, edge):
    return tuple(
        stats[f"edge_{edge}_{suffix}"] for suffix in ("ok", "failed", "dropped")
    )


def test_wait_all_branch_bookkeeping_is_exact():
    result = _run(_three_leaf("wait_all"))
    stats = result.dag_stats
    assert stats["dag_requests"] > 0
    assert result.report.completed > 0
    # Every request that fanned out settled each edge exactly once, so
    # the three edges' totals are identical and each sums to the same
    # fan-out count.
    totals = [
        _edge_totals(stats, f"compose-{leaf}")
        for leaf in ("text", "media", "graph")
    ]
    assert len({sum(t) for t in totals}) == 1
    assert sum(totals[0]) >= stats["dag_requests"] - 1
    # A healthy run never fails or drops a branch under wait_all.
    assert all(t[1] == 0 and t[2] == 0 for t in totals)
    assert stats["dag_requests_degraded"] == 0
    assert stats["dag_fanin_failures"] == 0


def test_gray_failure_degrades_quorum_but_fails_nothing():
    result = _run(_three_leaf("quorum", quorum=2), fault_plan=_GRAY,
                  resilience=ResiliencePolicy(deadline=0.05))
    stats = result.dag_stats
    assert result.faults.degrade_windows == 1
    assert stats["dag_requests_degraded"] > 0
    assert stats["dag_fanin_failures"] == 0
    # The slow branch was dropped, not failed: quorum cancelled it.
    ok, failed, dropped = _edge_totals(stats, "compose-text")
    assert dropped > 0
    assert failed == 0
    # Degraded responses are still successes.
    assert result.report.failed == 0


def test_gray_failure_fails_wait_all_requests():
    result = _run(_three_leaf("wait_all"), fault_plan=_GRAY,
                  resilience=ResiliencePolicy(deadline=0.05))
    stats = result.dag_stats
    # wait_all cannot degrade; the slow branch's deadline expiries are
    # fan-in failures.
    assert stats["dag_requests_degraded"] == 0
    assert stats["dag_fanin_failures"] > 0
    assert result.report.failed > 0


def test_best_effort_cuts_stragglers_at_the_timeout():
    result = _run(
        _three_leaf("best_effort", best_effort_timeout=0.005),
        fault_plan=_GRAY,
    )
    stats = result.dag_stats
    assert stats["dag_requests_degraded"] > 0
    assert stats["dag_fanin_failures"] == 0
    ok, failed, dropped = _edge_totals(stats, "compose-text")
    assert dropped > 0


def test_degraded_responses_counted_at_most_once_per_request():
    result = _run(_three_leaf("quorum", quorum=2), fault_plan=_GRAY,
                  resilience=ResiliencePolicy(deadline=0.05))
    stats = result.dag_stats
    assert stats["dag_requests_degraded"] <= stats["dag_requests"]


def test_per_edge_breakers_register_under_edge_names():
    result = _run(
        _three_leaf("wait_all"),
        resilience=ResiliencePolicy(breaker=BreakerConfig(open_duration=0.2)),
    )
    for leaf in ("text", "media", "graph"):
        assert f"compose-{leaf}_opens" in result.resilience


def test_sync_edges_and_service_jitter_compose():
    dag = DagConfig(
        entry="front",
        nodes=(
            ServiceNode(
                name="front",
                edges=(Edge("fast"), Edge("store", mode="sync")),
                fan_in="wait_all",
                service_cpu=100.0e-6,
            ),
            ServiceNode(name="fast", service_cpu=150.0e-6,
                        service_jitter=1.0),
            ServiceNode(name="store", service_cpu=150.0e-6),
        ),
    )
    result = _run(dag)
    stats = result.dag_stats
    assert result.report.completed > 0
    # The sync edge settles once per request too.
    assert sum(_edge_totals(stats, "front-store")) >= stats["dag_requests"] - 1
    # Jitter widens the distribution but must not change the totals:
    # same seed, same request count as a jitter-free clone.
    smooth = _run(DagConfig(
        entry="front",
        nodes=(
            dag.nodes[0],
            ServiceNode(name="fast", service_cpu=150.0e-6),
            dag.nodes[2],
        ),
    ))
    assert smooth.report.response_time_p99 != result.report.response_time_p99


def test_server_stats_report_every_node():
    # Server counters are only gathered for runs with fault/resilience
    # machinery attached (same rule as the linear chain).
    result = _run(_three_leaf("wait_all"),
                  resilience=ResiliencePolicy(deadline=0.5))
    for node in ("compose", "text", "media", "graph"):
        assert any(k.startswith(node) for k in result.server_stats), node
