"""HybridNetty path selection (the Figure 10 dispatch)."""

import pytest

from repro.core.classifier import PathCategory
from repro.core.hybrid import HybridServer
from repro.net.messages import Request

SMALL = 102
LARGE = 100 * 1024


def serve(env, server, conn, size, kind):
    request = Request(env, kind, size)
    conn.send_request(request)
    env.run(request.completed)
    return request


def test_warmup_takes_heavy_path(env, cpu, make_connection):
    """Unprofiled types go down the safe Netty path first."""
    server = HybridServer(env, cpu)
    conn = make_connection()
    server.attach(conn)
    request = serve(env, server, conn, SMALL, "small")
    assert request.metadata["path"] == "heavy"
    assert server.heavy_path_requests == 1
    assert server.light_path_requests == 0


def test_light_type_switches_to_light_path(env, cpu, make_connection):
    server = HybridServer(env, cpu)
    conn = make_connection()
    server.attach(conn)
    serve(env, server, conn, SMALL, "small")  # warm-up observation
    second = serve(env, server, conn, SMALL, "small")
    assert second.metadata["path"] == "light"
    assert server.classifier.classify("small") is PathCategory.LIGHT
    assert server.light_path_requests == 1


def test_heavy_type_stays_on_netty_path(env, cpu, make_connection):
    server = HybridServer(env, cpu)
    conn = make_connection()
    server.attach(conn)
    serve(env, server, conn, LARGE, "big")
    second = serve(env, server, conn, LARGE, "big")
    assert second.metadata["path"] == "heavy"
    assert server.classifier.classify("big") is PathCategory.HEAVY


def test_misclassified_light_falls_back_and_reclassifies(env, cpu, make_connection):
    """A type profiled light whose response grows past the buffer spins:
    the hybrid must finish it via the Netty machinery and flip the map."""
    server = HybridServer(env, cpu)
    conn = make_connection()
    server.attach(conn)
    serve(env, server, conn, SMALL, "page")  # profiled light
    serve(env, server, conn, SMALL, "page")
    assert server.classifier.classify("page") is PathCategory.LIGHT
    grown = serve(env, server, conn, LARGE, "page")  # dataset grew
    assert grown.completed_at is not None
    assert grown.metadata["path"] == "light->heavy"
    assert server.light_path_fallbacks == 1
    assert server.classifier.classify("page") is PathCategory.HEAVY
    # Next request of the type goes straight down the heavy path.
    nxt = serve(env, server, conn, LARGE, "page")
    assert nxt.metadata["path"] == "heavy"


def test_heavy_type_that_shrinks_reclassifies_to_light(env, cpu, make_connection):
    server = HybridServer(env, cpu)
    conn = make_connection()
    server.attach(conn)
    serve(env, server, conn, LARGE, "page")
    assert server.classifier.classify("page") is PathCategory.HEAVY
    serve(env, server, conn, SMALL, "page")  # shrank: single write, no spin
    assert server.classifier.classify("page") is PathCategory.LIGHT


def test_light_path_skips_pipeline_cost(env, cpu, make_connection, calib):
    """The light path is cheaper than the heavy path for the same request."""
    server = HybridServer(env, cpu)
    conn = make_connection()
    server.attach(conn)
    serve(env, server, conn, SMALL, "small")  # heavy path (warm-up)
    user_after_warmup = cpu.counters.busy_user
    serve(env, server, conn, SMALL, "small")  # light path
    light_cost = cpu.counters.busy_user - user_after_warmup
    # Compare with a pure heavy-path second request of another type.
    serve(env, server, conn, SMALL, "other")
    user_mid = cpu.counters.busy_user
    serve(env, server, conn, SMALL, "other2")
    heavy_cost = cpu.counters.busy_user - user_mid
    assert light_cost < heavy_cost


def test_profiler_records_every_completed_request(env, cpu, make_connection):
    server = HybridServer(env, cpu)
    conn = make_connection()
    server.attach(conn)
    for _ in range(3):
        serve(env, server, conn, SMALL, "a")
    assert server.profiler.get("a").observations == 3


def test_hybrid_counts_paths(env, cpu, make_connection):
    server = HybridServer(env, cpu)
    conn = make_connection()
    server.attach(conn)
    serve(env, server, conn, SMALL, "a")
    serve(env, server, conn, SMALL, "a")
    serve(env, server, conn, LARGE, "b")
    assert server.heavy_path_requests == 2  # warm-up a + b
    assert server.light_path_requests == 1
