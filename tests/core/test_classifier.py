"""Light/heavy path classifier (the hybrid's map object)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classifier import PathCategory, PathClassifier


def test_unknown_kind_is_unclassified():
    assert PathClassifier().classify("page") is None


def test_first_observation_sets_category():
    classifier = PathClassifier()
    assert classifier.observe("small", spun=False) is PathCategory.LIGHT
    assert classifier.observe("big", spun=True) is PathCategory.HEAVY
    assert classifier.classify("small") is PathCategory.LIGHT
    assert classifier.classify("big") is PathCategory.HEAVY


def test_immediate_update_on_contradiction():
    classifier = PathClassifier(confirm=1)
    classifier.observe("page", spun=False)
    assert classifier.observe("page", spun=True) is PathCategory.HEAVY
    assert classifier.reclassifications == 1
    assert classifier.flips_for("page") == 1


def test_hysteresis_requires_consecutive_contradictions():
    classifier = PathClassifier(confirm=3)
    classifier.observe("page", spun=False)
    assert classifier.observe("page", spun=True) is PathCategory.LIGHT
    assert classifier.observe("page", spun=True) is PathCategory.LIGHT
    assert classifier.observe("page", spun=True) is PathCategory.HEAVY


def test_consistent_observation_resets_contradictions():
    classifier = PathClassifier(confirm=2)
    classifier.observe("page", spun=False)
    classifier.observe("page", spun=True)   # 1 contradiction
    classifier.observe("page", spun=False)  # reset
    classifier.observe("page", spun=True)   # 1 contradiction again
    assert classifier.classify("page") is PathCategory.LIGHT


def test_confirm_validation():
    with pytest.raises(ValueError):
        PathClassifier(confirm=0)


def test_known_kinds_snapshot():
    classifier = PathClassifier()
    classifier.observe("a", spun=False)
    classifier.observe("b", spun=True)
    assert classifier.known_kinds == {
        "a": PathCategory.LIGHT,
        "b": PathCategory.HEAVY,
    }


@given(
    observations=st.lists(st.booleans(), min_size=1, max_size=100),
    confirm=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=60, deadline=None)
def test_converges_to_last_run_of_consistent_observations(observations, confirm):
    """After >= confirm consecutive identical observations, the category
    matches them."""
    classifier = PathClassifier(confirm=confirm)
    for spun in observations:
        classifier.observe("k", spun)
    tail = observations[-confirm:]
    if len(tail) == confirm and all(t == tail[0] for t in tail):
        expected = PathCategory.HEAVY if tail[0] else PathCategory.LIGHT
        assert classifier.classify("k") is expected


@given(observations=st.lists(st.booleans(), min_size=1, max_size=60))
@settings(max_examples=40, deadline=None)
def test_flip_count_bounded_by_contradictions(observations):
    classifier = PathClassifier(confirm=1)
    for spun in observations:
        classifier.observe("k", spun)
    transitions = sum(
        1 for a, b in zip(observations, observations[1:]) if a != b
    )
    assert classifier.reclassifications <= max(transitions, 0)
