"""Runtime request profiler."""

import pytest

from repro.core.profiler import KindProfile, RequestProfiler


def test_observe_creates_profile():
    profiler = RequestProfiler()
    profile = profiler.observe("page", write_calls=1)
    assert profile.kind == "page"
    assert profiler.get("page") is profile
    assert len(profiler) == 1


def test_unknown_kind_returns_none():
    assert RequestProfiler().get("missing") is None


def test_spin_detection_by_write_count():
    profile = KindProfile("x")
    profile.observe(1, 0)
    assert not profile.spins()
    profile.observe(90, 10)
    assert profile.spins()


def test_zero_writes_count_as_spin_observation():
    profile = KindProfile("x")
    profile.observe(1, 1)
    assert profile.spin_observations == 1


def test_mean_write_calls():
    profile = KindProfile("x")
    profile.observe(1, 0)
    profile.observe(3, 0)
    assert profile.mean_write_calls == 2.0


def test_mean_requires_observations():
    with pytest.raises(ValueError):
        KindProfile("x").mean_write_calls
    with pytest.raises(ValueError):
        KindProfile("x").spin_fraction


def test_negative_counters_rejected():
    with pytest.raises(ValueError):
        KindProfile("x").observe(-1, 0)


def test_ewma_tracks_recent_behaviour():
    profile = KindProfile("x")
    for _ in range(20):
        profile.observe(1, 0)
    assert not profile.spins()
    for _ in range(20):
        profile.observe(80, 5)
    assert profile.spins()
    assert profile.ewma_write_calls > 50


def test_spin_fraction():
    profile = KindProfile("x")
    profile.observe(1, 0)
    profile.observe(50, 0)
    assert profile.spin_fraction == pytest.approx(0.5)


def test_kinds_snapshot_is_copy():
    profiler = RequestProfiler()
    profiler.observe("a", 1)
    kinds = profiler.kinds
    kinds.clear()
    assert profiler.get("a") is not None
