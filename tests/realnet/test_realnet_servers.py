"""Real-socket servers: correctness plus the qualitative write-spin."""

import pytest

from repro.realnet.client import run_load
from repro.realnet.servers import SelectorSocketServer, ThreadedSocketServer

pytestmark = pytest.mark.realnet


@pytest.mark.parametrize("server_cls", [ThreadedSocketServer, SelectorSocketServer])
def test_serves_small_responses(server_cls):
    with server_cls() as server:
        result = run_load(server.address, concurrency=2, response_size=128,
                          duration=0.4)
    assert result.errors == 0
    assert result.completed > 5
    assert result.mean_response_time > 0


@pytest.mark.parametrize("server_cls", [ThreadedSocketServer, SelectorSocketServer])
def test_serves_large_responses(server_cls):
    with server_cls(send_buffer=16 * 1024) as server:
        result = run_load(server.address, concurrency=2,
                          response_size=256 * 1024, duration=0.5)
    assert result.errors == 0
    assert result.completed > 0


def test_threaded_server_one_logical_write_per_chunk():
    with ThreadedSocketServer(send_buffer=16 * 1024) as server:
        run_load(server.address, concurrency=2, response_size=100 * 1024,
                 duration=0.4)
        stats = server.stats.snapshot()
    # sendall: header + payload chunks (1MB slices -> 1 chunk for 100KB),
    # committed atomically per response — exact even when clients
    # disconnect mid-response at the end of the load window.
    assert stats["requests"] > 0
    assert stats["write_calls"] == 2 * stats["requests"]
    assert stats["zero_writes"] == 0


def test_selector_server_spins_on_large_responses():
    """With a small SO_SNDBUF the selector server needs multiple send()
    calls per response — the real-socket shadow of the paper's Table IV."""
    with SelectorSocketServer(send_buffer=16 * 1024) as server:
        run_load(server.address, concurrency=2, response_size=512 * 1024,
                 duration=0.6)
        stats = server.stats.snapshot()
    assert stats["requests"] > 0
    assert stats["write_calls"] > 1.5 * stats["requests"]


def test_selector_server_single_write_for_tiny_responses():
    with SelectorSocketServer() as server:
        run_load(server.address, concurrency=1, response_size=64, duration=0.3)
        stats = server.stats.snapshot()
    # header + payload per request, no spin.
    assert stats["write_calls"] <= 2 * stats["requests"] + 2


def test_load_client_validation():
    with pytest.raises(ValueError):
        run_load(("127.0.0.1", 1), concurrency=0, response_size=1, duration=0.1)
    with pytest.raises(ValueError):
        run_load(("127.0.0.1", 1), concurrency=1, response_size=1, duration=0)


def test_bounded_write_server_serves_large_responses():
    from repro.realnet.servers import BoundedWriteSocketServer

    with BoundedWriteSocketServer(send_buffer=16 * 1024) as server:
        result = run_load(server.address, concurrency=3,
                          response_size=256 * 1024, duration=0.6)
        stats = server.stats.snapshot()
    assert result.errors == 0
    assert result.completed > 0
    assert stats["write_calls"] >= stats["requests"]


def test_bounded_write_server_interleaves_small_during_large():
    """The jump-out keeps small responses flowing while a large one
    drains — unlike the naive SelectorSocketServer, which stalls them."""
    import threading

    from repro.realnet.servers import BoundedWriteSocketServer

    with BoundedWriteSocketServer(send_buffer=16 * 1024, spin_threshold=4) as server:
        results = {}

        def load(name, size, concurrency):
            results[name] = run_load(server.address, concurrency=concurrency,
                                     response_size=size, duration=0.8)

        big = threading.Thread(target=load, args=("big", 1024 * 1024, 2))
        small = threading.Thread(target=load, args=("small", 256, 2))
        big.start()
        small.start()
        big.join()
        small.join()
    assert results["small"].errors == 0
    assert results["small"].completed > 20
    assert results["big"].completed >= 1


def test_bounded_write_server_validation():
    import pytest as _pytest

    from repro.realnet.servers import BoundedWriteSocketServer

    with _pytest.raises(ValueError):
        BoundedWriteSocketServer(spin_threshold=0)
