"""Wire protocol for the real-socket demo."""

import pytest

from repro.realnet.protocol import (
    encode_request,
    encode_response_header,
    parse_request_line,
    parse_response_header,
    split_line,
)


def test_request_roundtrip():
    line = encode_request("small", 102)
    assert parse_request_line(line) == ("small", 102)


def test_request_validation():
    with pytest.raises(ValueError):
        encode_request("has space", 1)
    with pytest.raises(ValueError):
        encode_request("x", -1)
    with pytest.raises(ValueError):
        encode_request("x\n", 1)


def test_parse_request_rejects_garbage():
    with pytest.raises(ValueError):
        parse_request_line(b"POST x 1\n")
    with pytest.raises(ValueError):
        parse_request_line(b"GET x\n")
    with pytest.raises(ValueError):
        parse_request_line(b"GET x notanumber\n")
    with pytest.raises(ValueError):
        parse_request_line(b"GET x 99999999999999\n")


def test_response_header_roundtrip():
    header = encode_response_header(100 * 1024)
    assert parse_response_header(header) == 100 * 1024


def test_response_header_validation():
    with pytest.raises(ValueError):
        encode_response_header(-1)
    with pytest.raises(ValueError):
        parse_response_header(b"-5\n")


def test_split_line():
    assert split_line(b"abc\ndef") == (b"abc\n", b"def")
    assert split_line(b"no newline") == (None, b"no newline")
    assert split_line(b"\nrest") == (b"\n", b"rest")
